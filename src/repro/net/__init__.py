"""Live-network target layer: serve the simulated protocol servers over
TCP and drive live endpoints through the ``Target`` contract.

See :mod:`repro.net.serve` (the ``peachstar serve`` asyncio server),
:mod:`repro.net.target` (:class:`SocketTarget` + loopback harness) and
:mod:`repro.net.framing` (the peachstar envelope and the per-protocol
raw stream framers).
"""

from repro.net.config import (
    FRAMING_CHOICES, NetConfig, TCP_SCHEME, parse_tcp_url,
)
from repro.net.framing import (
    EnvelopeError, StreamFramer, encode_envelope, framer_for,
    read_envelope,
)
from repro.net.serve import ServeApp, bound_address, serve_forever, \
    start_serving
from repro.net.target import (
    DROP_SITE, NetTargetError, SocketTarget, make_loopback_target,
    make_net_target, make_socket_target,
)

__all__ = [
    "FRAMING_CHOICES", "NetConfig", "TCP_SCHEME", "parse_tcp_url",
    "EnvelopeError", "StreamFramer", "encode_envelope", "framer_for",
    "read_envelope",
    "ServeApp", "bound_address", "serve_forever", "start_serving",
    "DROP_SITE", "NetTargetError", "SocketTarget", "make_loopback_target",
    "make_net_target", "make_socket_target",
]
