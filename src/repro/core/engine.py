"""The two fuzzing engines: baseline Peach and Peach*.

:class:`GenerationFuzzer` is paper Alg. 1 — the plain generation-based
loop: CHOOSE a data model, GENERATE every chunk with the type-aware
mutators, JOINT, RUNTARGET, record crashes/hangs.  It collects *no*
feedback during fuzzing (the paper's Peach discards packets that achieve
new coverage).

:class:`PeachStar` is the paper's Fig. 3 system: the same loop augmented
with (1) coverage-based valuable-seed identification, (2) the File
Cracker building the puzzle corpus, and (3) semantic-aware generation
with File Fixup once the corpus is non-empty.  When the corpus is empty
it degrades exactly to the baseline strategy, as the paper specifies.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, fields
from typing import Deque, List, Optional, Tuple

from repro.core.corpus import PuzzleCorpus
from repro.core.cracker import FileCracker
from repro.core.seedpool import SeedPool
from repro.core.semantic import SemanticGenerator
from repro.model.datamodel import DataModel, Pit
from repro.model.generation import choose_model, generate_packet
from repro.model.instree import InsTree
from repro.model.mutators import GenerationPolicy
from repro.runtime.clock import SimulatedClock
from repro.runtime.target import ExecResult, Target
from repro.sanitizer.report import CrashDatabase


@dataclass(slots=True)
class IterationOutcome:
    """What one fuzzing iteration produced (consumed by the campaign).

    In session mode ``packet`` is the canonical encoded trace and
    ``result`` a :class:`~repro.runtime.target.TraceResult` (field-
    compatible where this layer looks).
    """

    packet: bytes
    model_name: str
    result: "ExecResult"
    valuable: bool = False
    new_unique_crash: bool = False
    semantic: bool = False  # packet came from donor splicing
    #: divergence reports newly deduplicated this iteration (empty
    #: unless a differential oracle is attached)
    new_divergences: Tuple = ()
    #: the ValuableSeed retained this iteration (None unless valuable);
    #: the campaign driver persists it from here instead of reaching
    #: into the pool, which would race ahead under batched execution
    seed: Optional[object] = None
    #: post-iteration engine readings, captured so the campaign driver's
    #: cadence bookkeeping sees the same values whether the outcome is
    #: handed over immediately (unbatched) or after the batch completes
    executions: int = 0
    hours: float = 0.0
    paths: int = 0


@dataclass(slots=True)
class EngineStats:
    executions: int = 0
    valuable_seeds: int = 0
    semantic_executions: int = 0
    crashes_total: int = 0
    hangs: int = 0
    puzzles: int = 0
    #: seeds absorbed from sibling shards during fleet corpus sync (never
    #: counted as locally-discovered valuable seeds)
    imported_seeds: int = 0
    #: session mode: whole traces executed (``executions`` counts steps)
    traces: int = 0
    #: response-feature classes observed by a state-learning campaign
    #: (0 for single-packet and hand-modelled session campaigns)
    learned_states: int = 0
    #: divergence findings recorded by the differential oracle (total,
    #: pre-deduplication — the analog of ``crashes_total``)
    divergences_total: int = 0
    #: transport faults actually injected by a faulting channel
    channel_faults: int = 0
    #: seeds retained by divergence steering (``--steer-divergence``):
    #: coverage-stale but first at a new parse-divergence site
    steered_seeds: int = 0
    #: live-network scenario events (0 on the deterministic loopback path)
    net_timeouts: int = 0
    net_reconnects: int = 0

    def as_dict(self) -> dict:
        """Every stat field, derived from the dataclass definition.

        A hand-maintained mirror here once let newly added stats vanish
        silently from workspace checkpoints and fleet tables; deriving
        from ``dataclasses.fields`` makes that impossible (pinned by the
        round-trip test in tests/core).
        """
        return {f.name: getattr(self, f.name) for f in fields(self)}


class GenerationFuzzer:
    """Baseline Peach: Alg. 1's continuous generation loop.

    Parameters
    ----------
    pit:
        The format specification.
    target:
        Target harness (with or without an instrumentation collector —
        the baseline ignores coverage either way; campaigns attach one so
        the *measurement* framework sees both engines identically, as the
        paper does).
    rng:
        Seeded RNG driving every random decision.
    clock:
        Simulated campaign clock (may be shared with the campaign).
    policy:
        Mutator strategy weights.
    oracle:
        Optional :class:`repro.channel.oracle.DifferentialOracle`; when
        attached, every delivered frame is examined for parse-path
        divergence and new findings are deduplicated into
        ``self.divergences`` (the :class:`CrashDatabase` twin of
        ``self.crashes``).
    steer_divergence:
        ``--steer-divergence``: an execution whose coverage is stale but
        whose frames hit a first-seen divergence site still enters the
        seed pool (behavioral novelty as a feedback signal).
    """

    engine_name = "peach"
    uses_feedback = False
    #: whether this engine's produce/execute split supports the batched
    #: pipeline (session engines produce whole traces and opt out)
    supports_batching = True

    def __init__(self, pit: Pit, target: Target, rng: random.Random,
                 clock: Optional[SimulatedClock] = None,
                 policy: Optional[GenerationPolicy] = None,
                 oracle=None, steer_divergence: bool = False):
        self.pit = pit
        self.target = target
        self.rng = rng
        self.clock = clock if clock is not None else SimulatedClock()
        self.policy = policy
        self.oracle = oracle
        self.steer_divergence = steer_divergence
        self.crashes = CrashDatabase()
        self.divergences = CrashDatabase()
        self.stats = EngineStats()
        self.seed_pool = SeedPool()  # used for *measurement* only
        #: coverage map pool for the batched pipeline — maps whose
        #: coverage must outlive the batch (valuable outcomes) are
        #: retired from rotation until the driver has read them; see
        #: :meth:`_batch_map_pool`
        self._batch_maps: List = []

    # -- packet production ---------------------------------------------------

    def _produce(self) -> Tuple[InsTree, bytes, DataModel, bool]:
        model = choose_model(self.pit, self.rng)
        tree, packet = generate_packet(model, self.rng, self.policy)
        return tree, packet, model, False

    # -- one iteration ---------------------------------------------------------

    def iterate(self) -> IterationOutcome:
        """Run one generate→execute→record iteration."""
        tree, packet, model, semantic = self._produce()
        result = self.target.run(packet, model.name)
        self.clock.charge_execution(instrumented=self.uses_feedback)
        self.stats.executions += 1
        if semantic:
            self.stats.semantic_executions += 1
        outcome = IterationOutcome(packet=packet, model_name=model.name,
                                   result=result, semantic=semantic)
        if result.crash is not None:
            self.stats.crashes_total += 1
            outcome.new_unique_crash = self.crashes.add(
                result.crash, self.clock.hours)
        if result.hang:
            self.stats.hangs += 1
        # Crashing/hanging packets go to the crash set (C7), not the seed
        # queue: their coverage is dominated by the fault path and their
        # chunks make poisonous donors — same policy as AFL's queue.
        if result.coverage is not None and result.crash is None \
                and not result.hang:
            seed = self.seed_pool.consider(
                packet, model.name, tree, result.coverage,
                self.stats.executions, self.clock.now_ms)
            if seed is not None:
                outcome.seed = seed
                outcome.valuable = True
                self.stats.valuable_seeds += 1
                self._on_valuable_seed(seed)
        if self.oracle is not None:
            delivered = result.delivered \
                if result.delivered is not None else [packet]
            self._run_oracle(outcome, [(model.name, delivered)])
            self._maybe_steer_divergence(outcome, tree)
        self._absorb_net_stats()
        return self._finish_outcome(outcome)

    def _finish_outcome(self, outcome: IterationOutcome) -> IterationOutcome:
        """Stamp the post-iteration readings the campaign driver uses."""
        outcome.executions = self.stats.executions
        outcome.hours = self.clock.hours
        outcome.paths = self.seed_pool.path_count
        return outcome

    # -- batched execution -----------------------------------------------------

    def _can_batch(self) -> bool:
        """Whether the batched pipeline applies to this configuration.

        Channels (per-frame fault RNG draws), oracles (steering feedback
        mid-processing) and non-batching targets (sockets) fall back to
        per-iteration execution — "where the backend allows it".
        """
        target = self.target
        return (self.supports_batching
                and getattr(target, "supports_batch", False)
                and target.collector is not None
                and target.channel is None
                and self.oracle is None)

    def _batch_map_pool(self):
        """The retained-coverage map pool (type-matched, never shrunk).

        The batch loop runs every execution into ``pool[i]`` and only
        advances ``i`` past maps whose coverage must outlive the batch
        (valuable outcomes — the campaign driver serializes exactly
        those).  Everything else reuses the same map, which stays
        cache-hot like the unbatched single-map path; the pool converges
        to (max valuable outcomes per batch + 1) entries.
        """
        maps = self._batch_maps
        template = type(self.target.collector.map)
        if maps and type(maps[0]) is not template:
            maps.clear()  # the collector's map impl was swapped
        if not maps:
            maps.append(template())
        return maps, template

    def iterate_batch(self, max_iterations: int,
                      exec_bound: Optional[int] = None,
                      time_bound_ms: Optional[float] = None
                      ) -> List[IterationOutcome]:
        """Run up to *max_iterations* iterations as one batched hot loop.

        Each iteration interleaves produce → execute → process exactly
        like :meth:`iterate` (same operation order, so the outcome
        stream, RNG draws and clock arithmetic are bit-identical to the
        unbatched loop by construction), but the loop body is flattened:
        per-iteration attribute lookups and the :meth:`Target.run`
        wrapper are hoisted, coverage whose consumer outlives the batch
        (valuable outcomes, which the campaign driver serializes) is
        retired into the per-engine map pool while everything else
        reuses one cache-hot map, and the coverage verdict
        short-circuits through ``would_be_new`` — a stale map makes
        ``SeedPool.consider`` a provable no-op, so skipping it is
        state-identical.

        An earlier produce-N-up-front design held one collector window
        across the batch; measured on the settrace backend the window
        toggle costs ~0.1µs while discarding/replaying productions at
        valuable/crash boundaries wasted ~40% of production time
        (production dominates the iteration), so producing lazily and
        toggling per execution is strictly faster.

        *exec_bound* caps total executions (the campaign driver aligns
        batches to its record/checkpoint cadences with it) and
        *time_bound_ms* stops the batch exactly where the unbatched
        driver loop would have stopped.  Configurations outside the
        batched pipeline (sessions, channels, oracles, socket targets)
        fall back to plain :meth:`iterate` calls honoring the bounds.
        """
        n = max_iterations
        if exec_bound is not None:
            n = min(n, exec_bound - self.stats.executions)
        if n <= 1 or not self._can_batch():
            # One outcome per call: on the unbatched path the result's
            # coverage is the collector's (or trace's) live map, which
            # the next iteration would overwrite before the caller's
            # bookkeeping could read it.  The batched path below avoids
            # this with the per-execution map pool.
            return [self.iterate()]

        maps, map_template = self._batch_map_pool()
        map_index = 0
        current_map = maps[0]
        produce = self._produce
        run_into = self.target.run_into
        clock = self.clock
        stats = self.stats
        seed_pool = self.seed_pool
        would_be_new = seed_pool.coverage.would_be_new
        crashes_add = self.crashes.add
        deadline = time_bound_ms if time_bound_ms is not None \
            else float("inf")
        outcomes: List[IterationOutcome] = []
        # Hot counters the loop owns exclusively live in locals; the
        # same int operations happen in the same order as the
        # attribute-based unbatched loop, so every stamped reading is
        # bit-identical.  The clock stays attribute-based — ``produce``
        # charges semantic-generation/fixup costs into it every
        # iteration — but the execution charge is inlined (two separate
        # adds, exactly like ``SimulatedClock.charge_execution``: float
        # addition is not associative and the clock must stay
        # bit-identical).
        costs = clock.costs
        exec_cost = costs.exec_cost_ms
        coverage_cost = costs.coverage_overhead_ms \
            if self.uses_feedback else None
        executions = stats.executions
        semantic_executions = 0
        paths = seed_pool.path_count
        # _absorb_net_stats is skipped per iteration: _can_batch already
        # guarantees no channel (the fault counter's only source) and an
        # in-process Target (which has no net counters to take)
        for _ in range(n):
            tree, packet, model, semantic = produce()
            result = run_into(packet, model.name, current_map)
            clock.now_ms += exec_cost
            if coverage_cost is not None:
                clock.now_ms += coverage_cost
            executions += 1
            if semantic:
                semantic_executions += 1
            outcome = IterationOutcome(
                packet=packet, model_name=model.name, result=result,
                semantic=semantic)
            crash = result.crash
            if crash is None and not result.hang:
                if would_be_new(result.coverage):
                    stats.executions = executions
                    seed = seed_pool.consider(
                        packet, model.name, tree, result.coverage,
                        executions, clock.now_ms)
                    outcome.seed = seed
                    outcome.valuable = True
                    stats.valuable_seeds += 1
                    self._on_valuable_seed(seed)
                    paths = seed_pool.path_count
                    # the driver serializes this outcome's coverage after
                    # the batch: retire its map and record the remaining
                    # iterations into a fresh one
                    map_index += 1
                    if map_index == len(maps):
                        maps.append(map_template())
                    current_map = maps[map_index]
            elif crash is not None:
                stats.crashes_total += 1
                outcome.new_unique_crash = crashes_add(
                    crash, clock.now_ms / 3_600_000.0)
            else:
                stats.hangs += 1
            outcome.executions = executions
            outcome.hours = clock.now_ms / 3_600_000.0
            outcome.paths = paths
            outcomes.append(outcome)
            if clock.now_ms >= deadline:
                break
        stats.executions = executions
        stats.semantic_executions += semantic_executions
        return outcomes

    def _on_valuable_seed(self, seed) -> None:
        """Hook for feedback-driven engines; baseline does nothing."""

    def _maybe_steer_divergence(self, outcome: IterationOutcome,
                                tree: Optional[InsTree]) -> None:
        """Divergence-aware seed scoring (``--steer-divergence``).

        The ``consider`` call already folded this execution's coverage
        into the virgin map, so a steered seed is ``force_add``-ed
        without a second merge — journal-replay resume stays
        bit-identical.
        """
        if not self.steer_divergence or not outcome.new_divergences:
            return
        result = outcome.result
        if outcome.valuable or result.coverage is None \
                or result.crash is not None or result.hang:
            return
        seed = self.seed_pool.force_add(
            outcome.packet, outcome.model_name, tree, result.coverage,
            self.stats.executions, self.clock.now_ms)
        outcome.seed = seed
        outcome.valuable = True
        self.stats.valuable_seeds += 1
        self.stats.steered_seeds += 1
        self._on_valuable_seed(seed)

    def _absorb_net_stats(self) -> None:
        """Sync transport-layer counters into stats (every iteration).

        The channel-fault counter used to sync only inside
        ``_run_oracle``, so a ``--channel-faults`` campaign with the
        differential oracle explicitly disabled reported 0 injected
        faults forever; syncing here runs on every iteration whenever a
        faulting channel is attached, oracle or not.
        """
        channel = getattr(self.target, "channel", None)
        if channel is not None:
            self.stats.channel_faults = getattr(
                channel, "faults_injected", 0)
        take = getattr(self.target, "take_net_counters", None)
        if take is None:
            return
        timeouts, reconnects = take()
        self.stats.net_timeouts += timeouts
        self.stats.net_reconnects += reconnects

    def _run_oracle(self, outcome: IterationOutcome, frames_per_step) -> None:
        """Examine delivered frames for divergence; dedup new findings.

        *frames_per_step* is ``[(model_name, [frame, ...]), ...]`` — the
        post-channel frames actually handed to the server, labelled with
        the step's model so the strict/lenient differential knows which
        grammar to consult.  (The channel-fault counter sync lives in
        ``_absorb_net_stats`` so it also runs with the oracle disabled.)
        """
        new = []
        for model_name, frames in frames_per_step:
            for frame in frames:
                for report in self.oracle.examine(
                        frame, model_name, self.stats.executions):
                    self.stats.divergences_total += 1
                    if self.divergences.add(report, self.clock.hours):
                        new.append(report)
        outcome.new_divergences = tuple(new)

    # -- reporting -------------------------------------------------------------

    @property
    def path_count(self) -> int:
        return self.seed_pool.path_count


class PeachStar(GenerationFuzzer):
    """Peach*: coverage-guided packet crack and generation (Fig. 3).

    Additional parameters
    ---------------------
    semantic_batch:
        Cap on seeds produced per semantic-generation invocation (the
        bound on Alg. 3's cartesian product).
    crack_enabled / semantic_enabled:
        Ablation switches: cracking without semantic generation measures
        pure corpus-building cost; disabling both turns Peach* into an
        instrumented Peach.
    """

    engine_name = "peach-star"
    uses_feedback = True

    def __init__(self, pit: Pit, target: Target, rng: random.Random,
                 clock: Optional[SimulatedClock] = None,
                 policy: Optional[GenerationPolicy] = None,
                 semantic_batch: int = 16,
                 max_donors_per_position: int = 6,
                 crack_enabled: bool = True,
                 semantic_enabled: bool = True,
                 semantic_ratio: float = 0.5,
                 pin_prob: float = 0.5,
                 oracle=None, steer_divergence: bool = False):
        super().__init__(pit, target, rng, clock, policy, oracle=oracle,
                         steer_divergence=steer_divergence)
        self.corpus = PuzzleCorpus(rng=random.Random(rng.getrandbits(32)))
        self.cracker = FileCracker(pit, self.corpus)
        self.generator = SemanticGenerator(
            self.corpus, rng, policy, batch_limit=semantic_batch,
            max_donors_per_position=max_donors_per_position,
            pin_prob=pin_prob)
        self.crack_enabled = crack_enabled
        self.semantic_enabled = semantic_enabled
        #: fraction of iterations drawn from the pending semantic queue
        #: (the remainder keeps exploring with the inherent strategy)
        self.semantic_ratio = semantic_ratio
        self._pending: Deque[Tuple[InsTree, bytes, str]] = deque()

    # -- packet production ---------------------------------------------------

    def _produce(self) -> Tuple[InsTree, bytes, DataModel, bool]:
        if self._pending and self.rng.random() < self.semantic_ratio:
            tree, packet, model_name = self._pending.popleft()
            model = self.pit.model(model_name)
            return tree, packet, model, True
        model = choose_model(self.pit, self.rng)
        if self.semantic_enabled and not self.corpus.is_empty and \
                self.rng.random() < self.semantic_ratio:
            batch = self.generator.construct(model)
            if batch:
                self.clock.charge_semantic_generation(len(batch))
                self.clock.charge_fixup()
                for tree, packet in batch[1:]:
                    self._pending.append((tree, packet, model.name))
                tree, packet = batch[0]
                return tree, packet, model, True
        tree, packet = generate_packet(model, self.rng, self.policy)
        return tree, packet, model, False

    # -- feedback --------------------------------------------------------------

    def _on_valuable_seed(self, seed) -> None:
        if not self.crack_enabled:
            return
        self.clock.charge_crack()
        new_puzzles = self.cracker.crack(seed.packet, seed.tree)
        self.stats.puzzles = self.corpus.puzzle_count()
        if new_puzzles and self._pending and \
                len(self._pending) > 4 * self.generator.batch_limit:
            # keep the queue bounded: drop the stalest spliced packets
            while len(self._pending) > 2 * self.generator.batch_limit:
                self._pending.popleft()
