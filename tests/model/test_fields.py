"""Unit tests for the field classes (construction rules)."""

import pytest

from repro.model import (
    Blob, Block, Choice, ModelError, Number, ParseError, Repeat,
    RuleSignature, Str,
)


class TestNumber:
    def test_encode_decode_roundtrip(self):
        field = Number("n", 2, default=7)
        assert field.decode(field.encode(0x1234)) == 0x1234

    def test_big_endian_layout(self):
        assert Number("n", 2).encode(0x0102) == b"\x01\x02"

    def test_little_endian_layout(self):
        assert Number("n", 2, endian="little").encode(0x0102) == b"\x02\x01"

    def test_three_byte_width(self):
        field = Number("ioa", 3, endian="little")
        assert field.encode(0x010203) == b"\x03\x02\x01"
        assert field.decode(b"\x03\x02\x01") == 0x010203

    def test_overflow_wraps_like_c(self):
        assert Number("n", 1).encode(0x1FF) == b"\xff"

    def test_signed_encode_decode(self):
        field = Number("n", 2, signed=True)
        assert field.decode(field.encode(-5)) == -5

    def test_signed_overflow_wraps(self):
        field = Number("n", 1, signed=True)
        assert field.decode(field.encode(200)) == 200 - 256

    def test_decode_wrong_width_raises(self):
        with pytest.raises(ParseError):
            Number("n", 2).decode(b"\x01")

    def test_values_constraint(self):
        field = Number("fc", 1, default=3, values=(1, 2, 3))
        assert field.validate(2)
        assert not field.validate(9)

    def test_min_max_constraint(self):
        field = Number("q", 2, default=10, minimum=1, maximum=125)
        assert field.validate(125)
        assert not field.validate(0)
        assert not field.validate(126)

    def test_default_violating_constraints_rejected(self):
        with pytest.raises(ModelError):
            Number("q", 1, default=9, values=(1, 2))

    def test_bad_width_rejected(self):
        with pytest.raises(ModelError):
            Number("n", 5)

    def test_bad_endian_rejected(self):
        with pytest.raises(ModelError):
            Number("n", 2, endian="middle")


class TestStr:
    def test_variable_roundtrip(self):
        field = Str("s", default="abc")
        assert field.decode(field.encode("hello")) == "hello"

    def test_fixed_length_pads(self):
        field = Str("s", length=4)
        assert field.encode("ab") == b"ab\x00\x00"

    def test_fixed_length_truncates(self):
        field = Str("s", length=2)
        assert field.encode("abcdef") == b"ab"

    def test_fixed_decode_wrong_length_raises(self):
        with pytest.raises(ParseError):
            Str("s", length=4).decode(b"ab")

    def test_bad_pad_rejected(self):
        with pytest.raises(ModelError):
            Str("s", pad=b"xy")


class TestBlob:
    def test_variable_passthrough(self):
        field = Blob("b")
        assert field.encode(b"\x01\x02") == b"\x01\x02"

    def test_fixed_length_pads_and_truncates(self):
        field = Blob("b", length=3)
        assert field.encode(b"\x01") == b"\x01\x00\x00"
        assert field.encode(b"\x01\x02\x03\x04") == b"\x01\x02\x03"

    def test_fixed_default_normalized(self):
        field = Blob("b", length=4, default=b"\x01")
        assert field.default_value() == b"\x01\x00\x00\x00"


class TestBlock:
    def test_children_order_preserved(self):
        block = Block("blk", [Number("a", 1), Number("b", 1)])
        assert [c.name for c in block.children()] == ["a", "b"]

    def test_duplicate_child_names_rejected(self):
        with pytest.raises(ModelError):
            Block("blk", [Number("a", 1), Number("a", 2)])

    def test_empty_block_rejected(self):
        with pytest.raises(ModelError):
            Block("blk", [])

    def test_fixed_width_sums_children(self):
        block = Block("blk", [Number("a", 2), Number("b", 4)])
        assert block.fixed_width() == 6

    def test_fixed_width_none_with_variable_child(self):
        block = Block("blk", [Number("a", 2), Blob("b")])
        assert block.fixed_width() is None

    def test_child_lookup(self):
        inner = Number("a", 1)
        block = Block("blk", [inner])
        assert block.child("a") is inner
        with pytest.raises(ModelError):
            block.child("missing")

    def test_iter_leaves_depth_first(self):
        block = Block("outer", [
            Number("a", 1),
            Block("inner", [Number("b", 1), Number("c", 1)]),
            Number("d", 1),
        ])
        assert [f.name for f in block.iter_leaves()] == ["a", "b", "c", "d"]


class TestChoiceRepeat:
    def test_choice_same_width_options(self):
        choice = Choice("c", [Number("a", 2), Number("b", 2)])
        assert choice.fixed_width() == 2

    def test_choice_mixed_width_is_variable(self):
        choice = Choice("c", [Number("a", 2), Number("b", 4)])
        assert choice.fixed_width() is None

    def test_repeat_bounds_validated(self):
        with pytest.raises(ModelError):
            Repeat("r", Number("x", 1), min_count=5, max_count=2)


class TestSignatures:
    def test_same_semantic_same_signature(self):
        a = Number("address", 2, semantic="address")
        b = Number("read_address", 2, semantic="address")
        assert a.signature() == b.signature()
        assert a.signature().stable_id() == b.signature().stable_id()

    def test_different_width_different_signature(self):
        a = Number("x", 2, semantic="address")
        b = Number("x", 4, semantic="address")
        assert a.signature() != b.signature()

    def test_semantic_defaults_to_name(self):
        assert Number("quantity", 2).signature().semantic == "quantity"

    def test_signature_is_hashable_and_stable(self):
        sig = RuleSignature("number", 2, "address")
        assert sig.stable_id() == RuleSignature("number", 2,
                                                "address").stable_id()
        assert {sig: 1}[sig] == 1

    def test_str_rendering(self):
        assert str(RuleSignature("blob", 0, "payload")) == "blob[var]:payload"
