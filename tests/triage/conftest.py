"""Shared fixture: one real crashing campaign, harvested once."""

import pytest

from repro.core import CampaignConfig, run_campaign
from repro.protocols import get_target


@pytest.fixture(scope="session")
def lib60870_crashes():
    """Unique crash reports from a budget lib60870 Peach* campaign."""
    spec = get_target("lib60870")
    result = run_campaign("peach-star", spec, seed=7,
                          config=CampaignConfig(budget_hours=24.0))
    assert result.unique_crashes, "campaign should crash lib60870"
    return spec, result.unique_crashes
