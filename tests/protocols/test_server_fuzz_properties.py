"""Property-based robustness tests: servers never fail unexpectedly.

For arbitrary byte strings (not just model-generated packets), every
server must either answer, stay silent, or raise a *typed* memory fault
at one of its seeded sites — never an unhandled Python exception, and
never a fault on the bug-free targets.
"""

from hypothesis import given, settings, strategies as st

from repro.protocols import all_targets, get_target
from repro.sanitizer import MemoryFault, SimHeap

_SERVERS = {spec.name: spec.make_server() for spec in all_targets()}


def _feed(name: str, data: bytes):
    server = _SERVERS[name]
    server.reset()
    try:
        server.handle_packet(SimHeap(), data)
        return None
    except MemoryFault as fault:
        return fault


@given(st.binary(max_size=80))
@settings(max_examples=200, deadline=None)
def test_iec104_never_faults_on_arbitrary_bytes(data):
    assert _feed("iec104", data) is None


@given(st.binary(max_size=120))
@settings(max_examples=200, deadline=None)
def test_opendnp3_never_faults_on_arbitrary_bytes(data):
    assert _feed("opendnp3", data) is None


@given(st.binary(max_size=120))
@settings(max_examples=200, deadline=None)
def test_libiec61850_never_faults_on_arbitrary_bytes(data):
    assert _feed("libiec61850", data) is None


@given(st.binary(max_size=100))
@settings(max_examples=200, deadline=None)
def test_libmodbus_faults_only_at_seeded_sites(data):
    fault = _feed("libmodbus", data)
    if fault is not None:
        sites = {site for _k, site in get_target("libmodbus")
                 .seeded_bug_sites}
        assert fault.site in sites


@given(st.binary(max_size=100))
@settings(max_examples=200, deadline=None)
def test_lib60870_faults_only_at_seeded_sites(data):
    fault = _feed("lib60870", data)
    if fault is not None:
        sites = {site for _k, site in get_target("lib60870")
                 .seeded_bug_sites}
        assert fault.site in sites


@given(st.binary(max_size=100))
@settings(max_examples=200, deadline=None)
def test_libiccp_faults_only_at_seeded_sites(data):
    fault = _feed("libiccp", data)
    if fault is not None:
        sites = {site for _k, site in get_target("libiccp")
                 .seeded_bug_sites}
        assert fault.site in sites


@given(st.sampled_from([spec.name for spec in all_targets()]),
       st.binary(max_size=6))
@settings(max_examples=150, deadline=None)
def test_short_frames_always_silently_dropped(name, data):
    """No target should do anything with sub-minimum frames."""
    server = _SERVERS[name]
    server.reset()
    assert server.handle_packet(SimHeap(), data) is None
