"""Peach pit for the libiec61850 target.

The MMS BER nesting is expressed with chained SizeOf relations: every TLV
is a (token tag, length-carrying Number, content Block) triple, so the
File Fixup module can re-establish all the nested lengths after donor
splicing — the deepest exercise of the paper's Fixup mechanism in this
repro.  Identifier chunks (``domain_id``, ``item_id``, ``invoke_id``)
share semantics across all service models.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.model import (
    Blob, Block, DataModel, Field, Number, Pit, Str, size_of,
)
from repro.protocols.iec61850 import codec
from repro.state.model import State, StateModel, Transition

DEFAULT_DOMAIN = "IED1_LD0"
DEFAULT_ITEM = "LLN0$ST$Mod$stVal"


def _tlv(prefix: str, tag: int, content: Sequence[Field], *,
         tag_semantic: str = "ber_tag") -> List[Field]:
    """A BER TLV as three fields: token tag, length (SizeOf), content."""
    block = Block(f"{prefix}_content", list(content))
    return [
        Number(f"{prefix}_tag", 1, default=tag, token=True,
               semantic=tag_semantic),
        size_of(Number(f"{prefix}_len", 1, semantic="ber_length"),
                f"{prefix}_content"),
        block,
    ]


def _string_tlv(prefix: str, default: str, *, tag: int = 0x1A,
                semantic: str) -> List[Field]:
    return [
        Number(f"{prefix}_tag", 1, default=tag, token=True,
               semantic="string_tag"),
        size_of(Number(f"{prefix}_len", 1, semantic="ber_length"),
                f"{prefix}_value"),
        Str(f"{prefix}_value", default=default, semantic=semantic),
    ]


def _object_name(prefix: str, domain: str, item: str) -> List[Field]:
    """Domain-specific ObjectName: [1]{ domainId, itemId }."""
    content = (_string_tlv(f"{prefix}_domain", domain, semantic="domain_id")
               + _string_tlv(f"{prefix}_item", item, semantic="item_id"))
    return _tlv(f"{prefix}_name", 0xA1, content, tag_semantic="name_tag")


def _variable_entry(prefix: str, domain: str, item: str) -> List[Field]:
    spec = _tlv(f"{prefix}_vspec", 0xA0,
                _object_name(prefix, domain, item),
                tag_semantic="vspec_tag")
    return _tlv(f"{prefix}_entry", 0x30, spec, tag_semantic="entry_tag")


def _invoke_id(prefix: str = "invoke") -> List[Field]:
    return [
        Number(f"{prefix}_tag", 1, default=0x02, token=True,
               semantic="invoke_tag"),
        Number(f"{prefix}_len", 1, default=1, token=True,
               semantic="ber_length"),
        Number(f"{prefix}_value", 1, default=1, semantic="invoke_id"),
    ]


def _frame_model(name: str, mms_fields: Sequence[Field],
                 weight: float = 1.0) -> DataModel:
    """Wrap an MMS PDU in COTP + TPKT with a length relation."""
    root = Block(f"{name}.frame", [
        Number("tpkt_version", 1, default=codec.TPKT_VERSION, token=True,
               semantic="tpkt_version"),
        Number("tpkt_reserved", 1, default=0, semantic="tpkt_reserved"),
        size_of(Number("tpkt_length", 2, semantic="tpkt_length"), "rest",
                adjust=4),
        Block("rest", [
            Number("cotp_length", 1, default=2, token=True,
                   semantic="cotp_length"),
            Number("cotp_type", 1, default=codec.COTP_DT, token=True,
                   semantic="cotp_type"),
            Number("cotp_eot", 1, default=codec.COTP_EOT,
                   semantic="cotp_eot"),
            Block("mms", list(mms_fields)),
        ]),
    ])
    return DataModel(f"iec61850.{name}", root, weight=weight)


def _confirmed(name: str, service_tag: int, service_fields: Sequence[Field],
               weight: float = 1.0) -> DataModel:
    service = _tlv("svc", service_tag, service_fields,
                   tag_semantic="service_tag")
    pdu = _tlv("pdu", codec.MMS_CONFIRMED_REQUEST,
               _invoke_id() + service, tag_semantic="pdu_tag")
    return _frame_model(name, pdu, weight=weight)


def make_pit() -> Pit:
    """Build the libiec61850 pit (12 data models)."""
    models = [
        _frame_model("initiate", _tlv(
            "pdu", codec.MMS_INITIATE_REQUEST,
            [Number("maxpdu_tag", 1, default=0x80, token=True,
                    semantic="initiate_param_tag"),
             Number("maxpdu_len", 1, default=2, token=True,
                    semantic="ber_length"),
             Number("maxpdu_value", 2, default=65000,
                    semantic="max_pdu_size")],
            tag_semantic="pdu_tag"), weight=0.5),
        _frame_model("conclude", _tlv(
            "pdu", codec.MMS_CONCLUDE_REQUEST, [
                Blob("empty", default=b"", max_length=8,
                     semantic="conclude_body")],
            tag_semantic="pdu_tag"), weight=0.3),
        _confirmed("status", codec.SVC_STATUS,
                   [Blob("status_body", default=b"", max_length=8,
                         semantic="status_body")], weight=0.5),
        _confirmed("identify", codec.SVC_IDENTIFY,
                   [Blob("identify_body", default=b"", max_length=8,
                         semantic="identify_body")], weight=0.5),
        _confirmed("get_name_list_vmd", codec.SVC_GET_NAME_LIST,
                   _tlv("class", 0xA0,
                        [Number("class_inner_tag", 1, default=0x80,
                                token=True, semantic="class_tag"),
                         Number("class_inner_len", 1, default=1, token=True,
                                semantic="ber_length"),
                         Number("object_class", 1, default=9,
                                semantic="object_class")],
                        tag_semantic="class_wrap_tag")
                   + _tlv("scope", 0xA1,
                          [Number("scope_inner_tag", 1, default=0x80,
                                  token=True, semantic="scope_tag"),
                           Number("scope_inner_len", 1, default=0,
                                  token=True, semantic="ber_length")],
                          tag_semantic="scope_wrap_tag")),
        _confirmed("get_name_list_domain", codec.SVC_GET_NAME_LIST,
                   _tlv("class", 0xA0,
                        [Number("class_inner_tag", 1, default=0x80,
                                token=True, semantic="class_tag"),
                         Number("class_inner_len", 1, default=1, token=True,
                                semantic="ber_length"),
                         Number("object_class", 1, default=9,
                                semantic="object_class")],
                        tag_semantic="class_wrap_tag")
                   + _tlv("scope", 0xA1,
                          _string_tlv("scope_domain", DEFAULT_DOMAIN,
                                      tag=0x81, semantic="domain_id"),
                          tag_semantic="scope_wrap_tag")),
        _confirmed("read_variable", codec.SVC_READ,
                   _tlv("spec", 0xA1,
                        _variable_entry("v0", DEFAULT_DOMAIN, DEFAULT_ITEM),
                        tag_semantic="spec_tag")),
        _confirmed("read_two_variables", codec.SVC_READ,
                   _tlv("spec", 0xA1,
                        _variable_entry("v0", DEFAULT_DOMAIN, DEFAULT_ITEM)
                        + _variable_entry("v1", "IED1_LD1",
                                          "XCBR1$ST$Pos$stVal"),
                        tag_semantic="spec_tag")),
        _confirmed("write_bool", codec.SVC_WRITE,
                   _tlv("spec", 0xA1,
                        _variable_entry("v0", DEFAULT_DOMAIN,
                                        "GGIO1$CO$SPCSO1$Oper$ctlVal"),
                        tag_semantic="spec_tag")
                   + _tlv("data", 0xA0,
                          [Number("bool_tag", 1,
                                  default=codec.DATA_BOOLEAN, token=True,
                                  semantic="data_tag"),
                           Number("bool_len", 1, default=1, token=True,
                                  semantic="ber_length"),
                           Number("bool_value", 1, default=1,
                                  semantic="bool_value")],
                          tag_semantic="data_wrap_tag")),
        _confirmed("write_int", codec.SVC_WRITE,
                   _tlv("spec", 0xA1,
                        _variable_entry("v0", DEFAULT_DOMAIN,
                                        "LLN0$CF$Mod$ctlModel"),
                        tag_semantic="spec_tag")
                   + _tlv("data", 0xA0,
                          [Number("int_tag", 1,
                                  default=codec.DATA_INTEGER, token=True,
                                  semantic="data_tag"),
                           size_of(Number("int_len", 1,
                                          semantic="ber_length"),
                                   "int_value"),
                           Blob("int_value", default=b"\x01",
                                max_length=8, semantic="int_value")],
                          tag_semantic="data_wrap_tag")),
        _confirmed("get_var_attributes", codec.SVC_GET_VAR_ATTRIBUTES,
                   _object_name("v0", DEFAULT_DOMAIN, DEFAULT_ITEM)),
        # coarse model: raw MMS payload behind valid framing
        _frame_model("raw_mms", [
            Blob("mms_blob",
                 default=bytes((0xA0, 0x05, 0x02, 0x01, 0x01, 0x80, 0x00)),
                 max_length=64, semantic="raw_mms"),
        ], weight=0.7),
    ]
    return Pit("iec61850", models)


def make_state_model() -> StateModel:
    """Session state machine for the libiec61850 target.

    Tracks the MMS association lifecycle the single-packet loop resets
    away: ``conclude`` releases the association, after which confirmed
    services on the same connection hit the server's
    not-associated reject path — unreachable in single-packet mode
    because ``reset()`` re-establishes the association before every
    execution.  Cross-packet IED-model state (a ``write`` changing what
    a later ``read`` returns) rides the same sessions.

    No captures are declared: the server answers with
    confirmed-RESPONSE PDUs (tag 0xA1) that the request-direction
    models (tag 0xA0 tokens) deliberately do not parse.
    """
    associated = State("associated", (
        Transition("iec61850.read_variable", "associated"),
        Transition("iec61850.read_two_variables", "associated", weight=0.6),
        Transition("iec61850.write_bool", "associated", weight=0.8),
        Transition("iec61850.write_int", "associated", weight=0.8),
        Transition("iec61850.get_name_list_vmd", "associated", weight=0.5),
        Transition("iec61850.get_name_list_domain", "associated",
                   weight=0.5),
        Transition("iec61850.get_var_attributes", "associated", weight=0.5),
        Transition("iec61850.status", "associated", weight=0.4),
        Transition("iec61850.identify", "associated", weight=0.4),
        Transition("iec61850.raw_mms", "associated", weight=0.6),
        Transition("iec61850.initiate", "associated", weight=0.3),
        Transition("iec61850.conclude", "concluded", weight=0.8),
    ))
    concluded = State("concluded", (
        Transition("iec61850.initiate", "associated", weight=1.2),
        Transition("iec61850.read_variable", "concluded"),
        Transition("iec61850.write_bool", "concluded", weight=0.5),
        Transition("iec61850.status", "concluded", weight=0.5),
        Transition("iec61850.raw_mms", "concluded", weight=0.4),
        Transition("iec61850.conclude", "concluded", weight=0.3),
    ))
    return StateModel("iec61850.session", "associated",
                      (associated, concluded))
