"""libiec61850-analog MMS server: the largest fuzzed target.

Mirrors libiec61850's server pipeline: TPKT/COTP validation, BER TLV
demultiplexing of the MMS PDU, confirmed-service dispatch, and an IED
data model (logical devices > logical nodes > data objects) backing
read/write/getNameList.  The recursive BER walk plus name resolution over
a two-level namespace is what gives this target the largest path count of
the six (paper Fig. 4c keeps climbing for 24 hours).

No vulnerabilities are seeded (Table I lists none for libiec61850): the
C-style decoding below bounds-checks every access against the simulated
heap buffer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.protocols.iec61850 import codec
from repro.runtime.target import ProtocolServer
from repro.sanitizer.heap import Pointer, SimHeap

MAX_NESTING_DEPTH = 8
MAX_VARIABLES_PER_REQUEST = 16

# data-access error codes (MMS DataAccessError)
DAE_OBJECT_NONEXISTENT = 10
DAE_TYPE_INCONSISTENT = 7
DAE_OBJECT_ACCESS_DENIED = 3


def _default_ied_model() -> Dict[str, Dict[str, Tuple[str, object]]]:
    """The served IED: two logical devices with typed data attributes."""
    return {
        "IED1_LD0": {
            "LLN0$ST$Mod$stVal": ("int", 1),
            "LLN0$ST$Beh$stVal": ("int", 1),
            "LLN0$DC$NamPlt$vendor": ("string", "repro"),
            "LLN0$CF$Mod$ctlModel": ("int", 1),
            "MMXU1$MX$TotW$mag$f": ("float", 1500),
            "MMXU1$MX$Hz$mag$f": ("float", 50),
            "GGIO1$ST$Ind1$stVal": ("bool", True),
            "GGIO1$CO$SPCSO1$Oper$ctlVal": ("bool", False),
        },
        "IED1_LD1": {
            "XCBR1$ST$Pos$stVal": ("int", 2),
            "XCBR1$CO$Pos$Oper$ctlVal": ("bool", False),
            "XCBR1$ST$BlkOpn$stVal": ("bool", False),
            "PTOC1$ST$Str$general": ("bool", False),
        },
    }


class Iec61850Server(ProtocolServer):
    """MMS server over the simulated heap with libiec61850 control flow."""

    name = "libiec61850"

    def __init__(self):
        self.model = _default_ied_model()
        self.associated = True  # harness models an established association

    def reset(self) -> None:
        self.model = _default_ied_model()
        self.associated = True

    # ------------------------------------------------------------------
    # framing
    # ------------------------------------------------------------------

    def handle_packet(self, heap: SimHeap, data: bytes) -> Optional[bytes]:
        if len(data) < 7:
            return None
        frame = heap.malloc_from(data, "tpkt-frame")
        version = heap.read_u8(frame, 0, "cotp.c:tpkt_version")
        if version != codec.TPKT_VERSION:
            return None
        total = heap.read_u16(frame, 2, "cotp.c:tpkt_length")
        if total != len(data):
            return None
        cotp_len = heap.read_u8(frame, 4, "cotp.c:cotp_length")
        if cotp_len < 2 or 5 + cotp_len > len(data):
            return None
        pdu_type = heap.read_u8(frame, 5, "cotp.c:cotp_type")
        if pdu_type != codec.COTP_DT:
            return None
        mms_offset = 5 + cotp_len
        mms_len = len(data) - mms_offset
        if mms_len < 2:
            return None
        mms = heap.malloc_from(
            heap.read(frame, mms_offset, mms_len, "cotp.c:payload_copy"),
            "mms-pdu")
        return self._handle_mms(heap, mms, mms_len)

    # ------------------------------------------------------------------
    # C-style BER primitives (bounds-checked against the heap buffer)
    # ------------------------------------------------------------------

    def _read_tlv_header(self, heap: SimHeap, buf: Pointer, pos: int,
                         end: int, site: str
                         ) -> Optional[Tuple[int, int, int]]:
        """Return (tag, length, value_pos) or None on malformed TLV."""
        if pos + 2 > end:
            return None
        tag = heap.read_u8(buf, pos, site)
        first = heap.read_u8(buf, pos + 1, site)
        value_pos = pos + 2
        if first < 0x80:
            length = first
        else:
            count = first & 0x7F
            if count == 0 or count > 2 or value_pos + count > end:
                return None
            length = 0
            for index in range(count):
                length = (length << 8) | heap.read_u8(buf, value_pos + index,
                                                      site)
            value_pos += count
        if value_pos + length > end:
            return None
        return tag, length, value_pos

    # ------------------------------------------------------------------
    # MMS dispatch
    # ------------------------------------------------------------------

    def _handle_mms(self, heap: SimHeap, mms: Pointer,
                    size: int) -> Optional[bytes]:
        header = self._read_tlv_header(heap, mms, 0, size,
                                       "mms_server.c:pdu_tag")
        if header is None:
            return None
        tag, length, value_pos = header
        end = value_pos + length
        if tag == codec.MMS_INITIATE_REQUEST:
            return self._initiate(heap, mms, value_pos, end)
        if tag == codec.MMS_CONCLUDE_REQUEST:
            # concluding ends the association (MMS a-release): later
            # confirmed requests on the same connection are rejected
            # until a fresh initiate — reset() re-arms the association,
            # so only a live session can observe the rejected state
            self.associated = False
            return codec.build_tpkt_cotp(
                bytes((codec.MMS_CONCLUDE_RESPONSE, 0)))
        if tag == codec.MMS_CONFIRMED_REQUEST:
            return self._confirmed_request(heap, mms, value_pos, end)
        return self._reject(0)

    def _initiate(self, heap: SimHeap, mms: Pointer, pos: int,
                  end: int) -> Optional[bytes]:
        max_pdu = 65000
        header = self._read_tlv_header(heap, mms, pos, end,
                                       "mms_server.c:initiate_param")
        if header is not None:
            tag, length, value_pos = header
            if tag == 0x80 and 1 <= length <= 4:
                max_pdu = 0
                for index in range(length):
                    max_pdu = (max_pdu << 8) | heap.read_u8(
                        mms, value_pos + index, "mms_server.c:initiate_pdu")
                if max_pdu < 64:
                    return self._reject(1)
        self.associated = True
        from repro.protocols.common.ber import encode_integer, encode_tlv
        body = encode_integer(min(max_pdu, 65000), tag=0x80)
        return codec.build_tpkt_cotp(
            encode_tlv(codec.MMS_INITIATE_RESPONSE, body))

    def _confirmed_request(self, heap: SimHeap, mms: Pointer, pos: int,
                           end: int) -> Optional[bytes]:
        if not self.associated:
            return self._reject(2)
        header = self._read_tlv_header(heap, mms, pos, end,
                                       "mms_server.c:invoke_id")
        if header is None or header[0] != 0x02:
            return self._reject(3)
        tag, length, value_pos = header
        if length < 1 or length > 4:
            return self._reject(3)
        invoke_id = 0
        for index in range(length):
            invoke_id = (invoke_id << 8) | heap.read_u8(
                mms, value_pos + index, "mms_server.c:invoke_id_value")
        pos = value_pos + length
        header = self._read_tlv_header(heap, mms, pos, end,
                                       "mms_server.c:service_tag")
        if header is None:
            return self._reject(3)
        service, svc_len, svc_pos = header
        svc_end = svc_pos + svc_len
        if service == codec.SVC_STATUS:
            return self._status_response(invoke_id)
        if service == codec.SVC_IDENTIFY:
            return self._identify_response(invoke_id)
        if service == codec.SVC_GET_NAME_LIST:
            return self._get_name_list(heap, mms, svc_pos, svc_end, invoke_id)
        if service == codec.SVC_READ:
            return self._read_service(heap, mms, svc_pos, svc_end, invoke_id)
        if service == codec.SVC_WRITE:
            return self._write_service(heap, mms, svc_pos, svc_end,
                                       invoke_id)
        if service == codec.SVC_GET_VAR_ATTRIBUTES:
            return self._get_var_attributes(heap, mms, svc_pos, svc_end,
                                            invoke_id)
        return self._confirmed_error(invoke_id, 1)  # service not supported

    # ------------------------------------------------------------------
    # name parsing shared by read/write/attributes (Fig. 2b shared blocks)
    # ------------------------------------------------------------------

    def _parse_object_name(self, heap: SimHeap, mms: Pointer, pos: int,
                           end: int) -> Optional[Tuple[str, str, int]]:
        """Parse a domain-specific ObjectName; returns (domain, item, next)."""
        header = self._read_tlv_header(heap, mms, pos, end,
                                       "mms_named_variable.c:name_tag")
        if header is None or header[0] != 0xA1:
            return None
        _, length, value_pos = header
        name_end = value_pos + length
        domain = self._parse_string(heap, mms, value_pos, name_end,
                                    "mms_named_variable.c:domain_id")
        if domain is None:
            return None
        item = self._parse_string(heap, mms, domain[1], name_end,
                                  "mms_named_variable.c:item_id")
        if item is None:
            return None
        return domain[0], item[0], name_end

    def _parse_string(self, heap: SimHeap, mms: Pointer, pos: int, end: int,
                      site: str) -> Optional[Tuple[str, int]]:
        header = self._read_tlv_header(heap, mms, pos, end, site)
        if header is None:
            return None
        tag, length, value_pos = header
        if tag not in (0x1A, 0x81):  # VisibleString variants
            return None
        if length > 64:
            return None  # name longer than the 64-char MMS identifier cap
        chars = []
        for index in range(length):
            octet = heap.read_u8(mms, value_pos + index, site)
            if octet < 0x20 or octet > 0x7E:
                return None  # identifiers are printable ASCII
            chars.append(chr(octet))
        return "".join(chars), value_pos + length

    def _parse_variable_list(self, heap: SimHeap, mms: Pointer, pos: int,
                             end: int) -> Optional[List[Tuple[str, str]]]:
        """Parse variableAccessSpecification > listOfVariables."""
        header = self._read_tlv_header(heap, mms, pos, end,
                                       "mms_server.c:access_spec")
        if header is None or header[0] != 0xA1:
            return None
        _, length, value_pos = header
        list_end = value_pos + length
        variables: List[Tuple[str, str]] = []
        cursor = value_pos
        while cursor < list_end:
            if len(variables) >= MAX_VARIABLES_PER_REQUEST:
                return None
            entry = self._read_tlv_header(heap, mms, cursor, list_end,
                                          "mms_server.c:variable_entry")
            if entry is None or entry[0] != 0x30:
                return None
            _, entry_len, entry_pos = entry
            entry_end = entry_pos + entry_len
            spec = self._read_tlv_header(heap, mms, entry_pos, entry_end,
                                         "mms_server.c:variable_spec")
            if spec is None or spec[0] != 0xA0:
                return None
            name = self._parse_object_name(heap, mms, spec[2],
                                           spec[2] + spec[1])
            if name is None:
                return None
            variables.append((name[0], name[1]))
            cursor = entry_end
        if not variables:
            return None
        return variables

    # ------------------------------------------------------------------
    # services
    # ------------------------------------------------------------------

    def _read_service(self, heap: SimHeap, mms: Pointer, pos: int, end: int,
                      invoke_id: int) -> Optional[bytes]:
        variables = self._parse_variable_list(heap, mms, pos, end)
        if variables is None:
            return self._confirmed_error(invoke_id, 2)
        from repro.protocols.common.ber import encode_tlv
        results = bytearray()
        for domain, item in variables:
            value = self._lookup(domain, item)
            if value is None:
                results += encode_tlv(0x80, bytes((DAE_OBJECT_NONEXISTENT,)))
            else:
                results += self._encode_value(value)
        body = encode_tlv(0xA1, bytes(results))  # listOfAccessResult
        service = encode_tlv(codec.SVC_READ, body)
        return self._confirmed_response(invoke_id, service)

    def _write_service(self, heap: SimHeap, mms: Pointer, pos: int, end: int,
                       invoke_id: int) -> Optional[bytes]:
        variables = self._parse_variable_list(heap, mms, pos, end)
        if variables is None:
            return self._confirmed_error(invoke_id, 2)
        data_header = None
        cursor = pos
        # skip the access spec TLV to find listOfData
        spec = self._read_tlv_header(heap, mms, cursor, end,
                                     "mms_server.c:write_spec_skip")
        if spec is not None:
            cursor = spec[2] + spec[1]
            data_header = self._read_tlv_header(heap, mms, cursor, end,
                                                "mms_server.c:list_of_data")
        if data_header is None or data_header[0] != 0xA0:
            return self._confirmed_error(invoke_id, 2)
        _, data_len, data_pos = data_header
        data_end = data_pos + data_len
        from repro.protocols.common.ber import encode_tlv
        results = bytearray()
        cursor = data_pos
        for domain, item in variables:
            if cursor >= data_end:
                results += bytes((0x80, 1, DAE_TYPE_INCONSISTENT))
                continue
            value_header = self._read_tlv_header(heap, mms, cursor, data_end,
                                                 "mms_server.c:write_value")
            if value_header is None:
                results += bytes((0x80, 1, DAE_TYPE_INCONSISTENT))
                break
            tag, length, value_pos = value_header
            cursor = value_pos + length
            status = self._apply_write(heap, mms, domain, item, tag, length,
                                       value_pos)
            if status == 0:
                results += encode_tlv(0x81, b"")  # success
            else:
                results += encode_tlv(0x80, bytes((status,)))
        service = encode_tlv(codec.SVC_WRITE, bytes(results))
        return self._confirmed_response(invoke_id, service)

    def _apply_write(self, heap: SimHeap, mms: Pointer, domain: str,
                     item: str, tag: int, length: int, value_pos: int) -> int:
        current = self._lookup(domain, item)
        if current is None:
            return DAE_OBJECT_NONEXISTENT
        kind, _old = current
        if "$CO$" not in item and "$CF$" not in item:
            return DAE_OBJECT_ACCESS_DENIED  # status/measurement: read-only
        if tag == codec.DATA_BOOLEAN and kind == "bool":
            if length != 1:
                return DAE_TYPE_INCONSISTENT
            raw = heap.read_u8(mms, value_pos, "mms_server.c:write_bool")
            self.model[domain][item] = (kind, bool(raw))
            return 0
        if tag == codec.DATA_INTEGER and kind == "int":
            if length < 1 or length > 4:
                return DAE_TYPE_INCONSISTENT
            value = 0
            for index in range(length):
                value = (value << 8) | heap.read_u8(
                    mms, value_pos + index, "mms_server.c:write_int")
            self.model[domain][item] = (kind, value)
            return 0
        if tag == codec.DATA_FLOAT and kind == "float":
            if length != 5:  # exponent-width octet + IEEE-754 single
                return DAE_TYPE_INCONSISTENT
            raw = heap.read(mms, value_pos + 1, 4,
                            "mms_server.c:write_float")
            self.model[domain][item] = (kind,
                                        int.from_bytes(raw, "big"))
            return 0
        if tag == codec.DATA_VISIBLE_STRING and kind == "string":
            chars = heap.read(mms, value_pos, length,
                              "mms_server.c:write_string")
            self.model[domain][item] = (kind,
                                        chars.decode("latin-1")[:32])
            return 0
        return DAE_TYPE_INCONSISTENT

    def _get_name_list(self, heap: SimHeap, mms: Pointer, pos: int, end: int,
                       invoke_id: int) -> Optional[bytes]:
        header = self._read_tlv_header(heap, mms, pos, end,
                                       "mms_get_name_list.c:class")
        if header is None or header[0] != 0xA0:
            return self._confirmed_error(invoke_id, 2)
        class_inner = self._read_tlv_header(heap, mms, header[2],
                                            header[2] + header[1],
                                            "mms_get_name_list.c:class_inner")
        if class_inner is None or class_inner[0] != 0x80 or \
                class_inner[1] != 1:
            return self._confirmed_error(invoke_id, 2)
        object_class = heap.read_u8(mms, class_inner[2],
                                    "mms_get_name_list.c:class_value")
        scope_pos = header[2] + header[1]
        scope = self._read_tlv_header(heap, mms, scope_pos, end,
                                      "mms_get_name_list.c:scope")
        if scope is None or scope[0] != 0xA1:
            return self._confirmed_error(invoke_id, 2)
        scope_inner = self._read_tlv_header(heap, mms, scope[2],
                                            scope[2] + scope[1],
                                            "mms_get_name_list.c:scope_inner")
        if scope_inner is None:
            return self._confirmed_error(invoke_id, 2)
        names: List[str]
        if scope_inner[0] == 0x80:  # vmd-specific: list domains
            names = sorted(self.model)
        elif scope_inner[0] == 0x81:  # domain-specific
            domain = self._parse_string(heap, mms, scope[2],
                                        scope[2] + scope[1],
                                        "mms_get_name_list.c:domain")
            if domain is None:
                return self._confirmed_error(invoke_id, 2)
            items = self.model.get(domain[0])
            if items is None:
                return self._confirmed_error(invoke_id, DAE_OBJECT_NONEXISTENT)
            if object_class == 9:  # named variables
                names = sorted(items)
            else:
                names = []
        else:
            return self._confirmed_error(invoke_id, 2)
        from repro.protocols.common.ber import (
            encode_tlv, encode_visible_string,
        )
        listing = b"".join(encode_visible_string(name)[:130]
                           for name in names[:16])
        body = encode_tlv(0xA0, listing) + encode_tlv(0x81, b"\x00")
        service = encode_tlv(codec.SVC_GET_NAME_LIST, body)
        return self._confirmed_response(invoke_id, service)

    def _get_var_attributes(self, heap: SimHeap, mms: Pointer, pos: int,
                            end: int, invoke_id: int) -> Optional[bytes]:
        name = self._parse_object_name(heap, mms, pos, end)
        if name is None:
            return self._confirmed_error(invoke_id, 2)
        value = self._lookup(name[0], name[1])
        if value is None:
            return self._confirmed_error(invoke_id, DAE_OBJECT_NONEXISTENT)
        from repro.protocols.common.ber import encode_tlv
        type_tag = {"bool": 0x84, "int": 0x85, "float": 0x87,
                    "string": 0x8A}.get(value[0], 0x85)
        body = encode_tlv(0x80, b"\xff") + encode_tlv(0xA2,
                                                      encode_tlv(type_tag,
                                                                 b"\x08"))
        service = encode_tlv(codec.SVC_GET_VAR_ATTRIBUTES, body)
        return self._confirmed_response(invoke_id, service)

    # ------------------------------------------------------------------
    # model access + response assembly
    # ------------------------------------------------------------------

    def _lookup(self, domain: str, item: str
                ) -> Optional[Tuple[str, object]]:
        items = self.model.get(domain)
        if items is None:
            return None
        return items.get(item)

    def _encode_value(self, value: Tuple[str, object]) -> bytes:
        from repro.protocols.common.ber import encode_tlv
        kind, payload = value
        if kind == "bool":
            return encode_tlv(codec.DATA_BOOLEAN,
                              b"\x01" if payload else b"\x00")
        if kind == "int":
            return encode_tlv(codec.DATA_INTEGER,
                              int(payload).to_bytes(4, "big", signed=True))
        if kind == "float":
            return encode_tlv(codec.DATA_FLOAT,
                              b"\x08" + int(payload).to_bytes(4, "big"))
        return encode_tlv(codec.DATA_VISIBLE_STRING,
                          str(payload).encode("latin-1"))

    def _status_response(self, invoke_id: int) -> bytes:
        from repro.protocols.common.ber import encode_tlv
        service = encode_tlv(codec.SVC_STATUS, bytes((0x80, 1, 0)))
        return self._confirmed_response(invoke_id, service)

    def _identify_response(self, invoke_id: int) -> bytes:
        from repro.protocols.common.ber import (
            encode_tlv, encode_visible_string,
        )
        body = (encode_visible_string("repro", tag=0x80)
                + encode_visible_string("libiec61850-analog", tag=0x81)
                + encode_visible_string("1.0", tag=0x82))
        service = encode_tlv(codec.SVC_IDENTIFY, body)
        return self._confirmed_response(invoke_id, service)

    def _confirmed_response(self, invoke_id: int, service: bytes) -> bytes:
        from repro.protocols.common.ber import encode_integer, encode_tlv
        pdu = encode_tlv(codec.MMS_CONFIRMED_RESPONSE,
                         encode_integer(invoke_id) + service)
        return codec.build_tpkt_cotp(pdu)

    def _confirmed_error(self, invoke_id: int, code: int) -> bytes:
        from repro.protocols.common.ber import encode_integer, encode_tlv
        pdu = encode_tlv(codec.MMS_CONFIRMED_ERROR,
                         encode_integer(invoke_id)
                         + encode_tlv(0x80, bytes((code,))))
        return codec.build_tpkt_cotp(pdu)

    def _reject(self, reason: int) -> bytes:
        from repro.protocols.common.ber import encode_tlv
        return codec.build_tpkt_cotp(
            encode_tlv(codec.MMS_REJECT, bytes((0x80, 1, reason))))
