"""AFL-style edge-coverage bitmap (the paper's instrumentation model).

Paper §IV-B inserts, at every branch point::

    cur_location = <COMPILE_TIME_RANDOM>;
    shared_mem[cur_location ^ prev_location]++;
    prev_location = cur_location >> 1;

:class:`CoverageMap` is the per-execution ``shared_mem`` array;
:class:`GlobalCoverage` is the accumulated "virgin map" that decides
whether a seed reached "a new program execution state that has not
appeared before" — i.e. whether it is *valuable*.  Hit counts are bucketed
into power-of-two classes like AFL so loop-count changes register as new
states without exploding the path count.

Performance model: a typical execution touches a few hundred of the
65,536 edges, so every per-execution operation (``merge``,
``edge_count``, ``path_hash``, reset) runs off a *journal* of touched
indices — O(touched) instead of O(MAP_SIZE).  This is AFL's
sparse-virgin-map trick adapted to CPython: the dense array stays (so
index arithmetic is one bytearray access), but nothing ever scans it.
All mutation must go through :meth:`CoverageMap.visit`; writing
``counts`` directly desynchronizes the journal.

Two implementations share that model:

* the **sparse** reference — pure-Python journal walks, the pinned
  behavioural baseline;
* the **vector** backend — :class:`VectorCoverageMap`/
  :class:`VectorGlobalCoverage` keep the same bytearrays (so the visit
  hot path and the workspace's virgin-map replay are untouched) but run
  ``merge``/``would_be_new``/``absorb``/``fast_reset`` as numpy
  fancy-index operations over zero-copy ``frombuffer`` views.

:func:`resolve_coverage_impl` picks between them (``REPRO_COVERAGE_IMPL=
sparse|vector|auto``); the parity suite in
``tests/runtime/test_vector_parity.py`` pins them bit-for-bit equal.
Both memoize the sorted journal (keyed by a generation counter plus the
journal length — within one generation the journal only grows) so
``path_hash`` and ``iter_hits`` never re-sort what they already sorted.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Tuple

try:  # the vector backend is optional; "auto" falls back to sparse
    import numpy as _np
except ImportError:  # pragma: no cover - container always ships numpy
    _np = None

MAP_SIZE_POW2 = 16
MAP_SIZE = 1 << MAP_SIZE_POW2
_MAP_MASK = MAP_SIZE - 1

#: journals longer than this zero faster via the template slice-assign
_SPARSE_RESET_LIMIT = MAP_SIZE // 16

#: below this journal length the pure-Python walks beat numpy — the
#: ``np.array(journal)`` build dominates fancy-indexing's win (measured
#: crossover ~130 on CPython 3.11 / numpy 2.4); the vector classes
#: degrade to the inherited reference loops there, which is why they
#: stay bit-identical by construction
_VECTOR_MIN_JOURNAL = 128

def bucket_count(count: int) -> int:
    """Map a raw edge hit count onto its AFL bucket bit.

    AFL's count_class_lookup: 1→1, 2→2, 3→4, 4-7→8, 8-15→16, 16-31→32,
    32-127→64, 128+→128.
    """
    if count <= 0:
        return 0
    if count == 1:
        return 1
    if count == 2:
        return 2
    if count == 3:
        return 4
    if count <= 7:
        return 8
    if count <= 15:
        return 16
    if count <= 31:
        return 32
    if count <= 127:
        return 64
    return 128


#: AFL's count_class_lookup as a flat table: one C-level index replaces
#: the eight-way Python branch chain on every merged edge.
BUCKET_LUT = bytes(bucket_count(count) for count in range(256))

_BUCKET_LUT_NP = _np.frombuffer(BUCKET_LUT, dtype=_np.uint8) \
    if _np is not None else None

_ZERO_TEMPLATE = bytes(MAP_SIZE)


class CoverageMap:
    """Per-execution edge hit map (``shared_mem`` analog)."""

    __slots__ = ("counts", "journal", "_prev", "_gen", "_sorted",
                 "_sorted_key")

    def __init__(self):
        self.counts = bytearray(MAP_SIZE)
        #: indices touched this execution, in first-touch order (no dups)
        self.journal: List[int] = []
        self._prev = 0
        #: bumped on every reset; within one generation the journal only
        #: grows, so (generation, len(journal)) keys the sorted-journal
        #: memo — count bumps on known edges never invalidate it
        self._gen = 0
        self._sorted: List[int] = []
        self._sorted_key = (0, 0)

    def reset(self) -> None:
        """Clear the map for the next execution (full-map slice assign)."""
        self.counts[:] = _ZERO_TEMPLATE
        self.journal.clear()
        self._prev = 0
        self._gen += 1

    def fast_reset(self) -> None:
        """Clear only what the journal says was touched.

        Falls back to the template slice-assign when the journal is large
        enough that per-index stores would cost more than the memcpy.
        """
        journal = self.journal
        if len(journal) > _SPARSE_RESET_LIMIT:
            self.counts[:] = _ZERO_TEMPLATE
        else:
            counts = self.counts
            for index in journal:
                counts[index] = 0
        journal.clear()
        self._prev = 0
        self._gen += 1

    def _sorted_journal(self) -> List[int]:
        """The journal in ascending index order, sorted at most once.

        Valid until the journal grows (a new first-touch) or resets;
        ``path_hash`` + ``iter_hits`` on the same execution share one
        sort.
        """
        key = (self._gen, len(self.journal))
        if self._sorted_key != key:
            self._sorted = sorted(self.journal)
            self._sorted_key = key
        return self._sorted

    def visit(self, cur_location: int) -> None:
        """Record the transition into basic block *cur_location*.

        Implements the paper's snippet: bump ``shared_mem[cur ^ prev]``
        then shift ``prev``.
        """
        index = (cur_location ^ self._prev) & _MAP_MASK
        counts = self.counts
        count = counts[index]
        if count == 0:
            counts[index] = 1
            self.journal.append(index)
        elif count < 255:
            counts[index] = count + 1
        self._prev = (cur_location >> 1) & _MAP_MASK

    def absorb(self, other: "CoverageMap") -> None:
        """Fold another execution map's counts into this one.

        The session executor accumulates per-step maps into one
        trace-level map this way: the result is what a single execution
        running all steps back-to-back would have produced (edge counts
        sum, saturating at 255), so ``edge_count``/``path_hash``/
        ``iter_hits`` describe the whole trace.  O(touched in *other*).
        """
        counts = self.counts
        journal = self.journal
        other_counts = other.counts
        for index in other.journal:
            current = counts[index]
            if current == 0:
                journal.append(index)
            counts[index] = min(255, current + other_counts[index])

    def iter_hits(self) -> Iterable[Tuple[int, int]]:
        """Yield ``(edge_index, raw_count)`` for every touched edge.

        Ascending index order, matching a dense left-to-right map scan.
        """
        counts = self.counts
        for index in self._sorted_journal():
            yield index, counts[index]

    def edge_count(self) -> int:
        """Number of distinct edges touched this execution."""
        return len(self.journal)

    def path_hash(self) -> int:
        """Order-insensitive hash of the bucketed map (path identity)."""
        acc = 0xCBF29CE484222325
        counts = self.counts
        lut = BUCKET_LUT
        for index in self._sorted_journal():
            acc ^= (index << 8) | lut[counts[index]]
            acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        return acc


class GlobalCoverage:
    """Accumulated bucketed coverage across the whole campaign."""

    __slots__ = ("virgin", "edges_seen")

    def __init__(self):
        self.virgin = bytearray(MAP_SIZE)
        self.edges_seen = 0

    def merge(self, execution_map: CoverageMap) -> bool:
        """Fold *execution_map* in; return True when new state was reached.

        New state = a never-seen edge, or a never-seen hit-count bucket on
        a known edge — AFL's ``has_new_bits``.  Walks the journal (each
        index is independent, so touch order does not affect the result).
        """
        new_bits = False
        new_edges = 0
        virgin = self.virgin
        counts = execution_map.counts
        lut = BUCKET_LUT
        for index in execution_map.journal:
            seen = virgin[index]
            bit = lut[counts[index]]
            if seen & bit == 0:
                if seen == 0:
                    new_edges += 1
                virgin[index] = seen | bit
                new_bits = True
        self.edges_seen += new_edges
        return new_bits

    def merge_bucketed(self, pairs: Iterable[Tuple[int, int]]) -> bool:
        """Fold already-bucketed ``(edge_index, bucket_bits)`` pairs in.

        The corpus-exchange path of the fleet subsystem: imported seeds
        travel as the bucketed sparse maps persisted in a sibling shard's
        coverage journal, so the import merges bucket bits directly
        instead of re-bucketing raw counts.  Returns True when the pairs
        reached new state (same contract as :meth:`merge`).
        """
        new_bits = False
        new_edges = 0
        virgin = self.virgin
        for index, bucket in pairs:
            seen = virgin[index]
            if seen & bucket != bucket:
                if seen == 0:
                    new_edges += 1
                virgin[index] = seen | bucket
                new_bits = True
        self.edges_seen += new_edges
        return new_bits

    def would_be_new(self, execution_map: CoverageMap) -> bool:
        """Non-mutating variant of :meth:`merge`."""
        virgin = self.virgin
        counts = execution_map.counts
        lut = BUCKET_LUT
        for index in execution_map.journal:
            if virgin[index] & lut[counts[index]] == 0:
                return True
        return False

    def edge_coverage(self) -> int:
        """Total distinct edges observed so far."""
        return self.edges_seen


class VectorCoverageMap(CoverageMap):
    """Numpy-vectorized execution map; bit-for-bit equal to the sparse one.

    ``counts`` stays the inherited bytearray — ``visit`` (the per-line
    hot path) and everything that persists raw bytes are untouched — but
    a writable zero-copy ``frombuffer`` view powers the batch
    operations.  The journal likewise stays a Python list (``append`` in
    ``visit`` beats ``array``/ndarray growth by 3x); it is converted to
    an index vector at most once per (generation, length) and the
    conversion is shared by ``merge``/``would_be_new``/``fast_reset``/
    ``path_hash`` on the same execution.  Journals shorter than
    ``_VECTOR_MIN_JOURNAL`` take the inherited pure-Python walks, which
    beat the ``np.array`` build below the measured crossover — the
    kernels are hybrid, the *results* identical either way.
    """

    __slots__ = ("_counts_np", "_idx", "_idx_key")

    def __init__(self):
        if _np is None:  # pragma: no cover - factory gates on numpy
            raise RuntimeError(
                "the vector coverage impl needs numpy; use the sparse "
                "impl (REPRO_COVERAGE_IMPL=sparse)")
        super().__init__()
        self._counts_np = _np.frombuffer(self.counts, dtype=_np.uint8)
        self._idx = _np.empty(0, dtype=_np.int64)
        self._idx_key = (0, 0)

    def _indices(self):
        """The journal as an int64 index vector (memoized like the sort)."""
        key = (self._gen, len(self.journal))
        if self._idx_key != key:
            self._idx = _np.array(self.journal, dtype=_np.int64)
            self._idx_key = key
        return self._idx

    def fast_reset(self) -> None:
        journal = self.journal
        if journal:
            if len(journal) > _SPARSE_RESET_LIMIT:
                self.counts[:] = _ZERO_TEMPLATE
            elif len(journal) < _VECTOR_MIN_JOURNAL:
                counts = self.counts
                for index in journal:
                    counts[index] = 0
            else:
                self._counts_np[self._indices()] = 0
            journal.clear()
        self._prev = 0
        self._gen += 1

    def absorb(self, other: "CoverageMap") -> None:
        if not other.journal:
            return
        if not isinstance(other, VectorCoverageMap) \
                or len(other.journal) < _VECTOR_MIN_JOURNAL:
            super().absorb(other)
            return
        idx = other._indices()
        counts = self._counts_np
        current = counts[idx].astype(_np.uint16)
        fresh = current == 0
        if fresh.any():
            # journal append order = other's first-touch order, exactly
            # like the reference loop
            self.journal.extend(idx[fresh].tolist())
        summed = current + other._counts_np[idx]
        counts[idx] = _np.minimum(summed, 255).astype(_np.uint8)

    def path_hash(self) -> int:
        journal = self.journal
        if not journal:
            return 0xCBF29CE484222325
        if len(journal) < _VECTOR_MIN_JOURNAL:
            return super().path_hash()
        idx = _np.sort(self._indices())
        terms = ((idx << 8) |
                 _BUCKET_LUT_NP[self._counts_np[idx]]).tolist()
        acc = 0xCBF29CE484222325
        for term in terms:
            acc = ((acc ^ term) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        return acc


class VectorGlobalCoverage(GlobalCoverage):
    """Vectorized virgin map: same bytearray, numpy merge/decide path.

    ``virgin`` stays the inherited bytearray so the workspace's
    journal-replay restore (``virgin[index] |= bucket``) and the fleet's
    ``merge_bucketed`` import path work unchanged; the view shares its
    memory.  Sparse/dense execution maps degrade to the reference loop.
    """

    __slots__ = ("_virgin_np",)

    def __init__(self):
        if _np is None:  # pragma: no cover - factory gates on numpy
            raise RuntimeError(
                "the vector coverage impl needs numpy; use the sparse "
                "impl (REPRO_COVERAGE_IMPL=sparse)")
        super().__init__()
        self._virgin_np = _np.frombuffer(self.virgin, dtype=_np.uint8)

    def merge(self, execution_map: CoverageMap) -> bool:
        if not isinstance(execution_map, VectorCoverageMap) \
                or len(execution_map.journal) < _VECTOR_MIN_JOURNAL:
            return super().merge(execution_map)
        if not execution_map.journal:
            return False
        idx = execution_map._indices()
        virgin = self._virgin_np
        seen = virgin[idx]
        bit = _BUCKET_LUT_NP[execution_map._counts_np[idx]]
        if not ((seen & bit) == 0).any():
            return False
        # a journal entry has count >= 1, so its bucket bit is nonzero and
        # seen == 0 implies seen & bit == 0: counting zero bytes matches
        # the reference loop's new-edge accounting exactly
        self.edges_seen += int(_np.count_nonzero(seen == 0))
        virgin[idx] = seen | bit
        return True

    def would_be_new(self, execution_map: CoverageMap) -> bool:
        if not isinstance(execution_map, VectorCoverageMap) \
                or len(execution_map.journal) < _VECTOR_MIN_JOURNAL:
            return super().would_be_new(execution_map)
        if not execution_map.journal:
            return False
        idx = execution_map._indices()
        bit = _BUCKET_LUT_NP[execution_map._counts_np[idx]]
        return bool(((self._virgin_np[idx] & bit) == 0).any())


# -- implementation selection -------------------------------------------------

def numpy_available() -> bool:
    """True when the vector coverage implementation can run."""
    return _np is not None


def resolve_coverage_impl(impl: str = "auto") -> str:
    """Resolve an implementation request to ``"vector"`` or ``"sparse"``.

    ``"auto"`` consults ``REPRO_COVERAGE_IMPL`` and then prefers the
    vectorized backend when numpy is importable, falling back to the
    sparse reference otherwise; an explicit ``"vector"`` request without
    numpy raises so misconfiguration is loud.  (Same contract as
    :func:`repro.runtime.instrument.resolve_backend` for the collector
    choice — the two axes compose freely.)
    """
    choice = impl or "auto"
    if choice == "auto":
        choice = os.environ.get("REPRO_COVERAGE_IMPL", "auto") or "auto"
    if choice == "auto":
        return "vector" if _np is not None else "sparse"
    if choice not in ("vector", "sparse"):
        raise ValueError(
            f"unknown coverage impl {choice!r}; "
            "choices: auto, vector, sparse")
    if choice == "vector" and _np is None:
        raise RuntimeError(
            "REPRO_COVERAGE_IMPL=vector requested but numpy is not "
            "importable; install numpy or use the sparse impl")
    return choice


def make_coverage_map(impl: str = "auto") -> CoverageMap:
    """Build an execution map of the resolved implementation."""
    if resolve_coverage_impl(impl) == "vector":
        return VectorCoverageMap()
    return CoverageMap()


def make_global_coverage(impl: str = "auto") -> GlobalCoverage:
    """Build a virgin map of the resolved implementation."""
    if resolve_coverage_impl(impl) == "vector":
        return VectorGlobalCoverage()
    return GlobalCoverage()
