"""Campaign statistics: the paper's headline metrics.

Three derived measurements back the paper's §V-B claims:

* **path increase** — percentage of additional paths Peach* covers over
  Peach at the end of the budget (the paper reports 8.35%-36.84%, average
  27.35%);
* **speedup** — how much faster Peach* reaches the coverage level Peach
  ends at (the paper reports 1.2X-25X, average 5.7X);
* **time-to-bug** — simulated time until each unique vulnerability is
  first triggered (backs Table I).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.campaign import CampaignResult, average_paths_at
from repro.sanitizer.report import CrashDatabase, CrashReport


@dataclass
class ComparisonSummary:
    """Peach vs Peach* on one target."""

    target_name: str
    budget_hours: float
    peach_final_paths: float
    star_final_paths: float
    path_increase_pct: float
    speedup: Optional[float]

    def row(self) -> str:
        speedup = f"{self.speedup:.1f}X" if self.speedup else ">budget"
        return (f"{self.target_name:<14} paths {self.peach_final_paths:7.1f}"
                f" -> {self.star_final_paths:7.1f}   "
                f"+{self.path_increase_pct:6.2f}%   speedup {speedup}")


def path_increase_pct(peach_results: Sequence[CampaignResult],
                      star_results: Sequence[CampaignResult],
                      hours: float) -> float:
    """Percent more paths Peach* covered at *hours* (averaged over reps)."""
    peach = average_paths_at(peach_results, hours)
    star = average_paths_at(star_results, hours)
    if peach <= 0:
        return 0.0 if star <= 0 else 100.0
    return (star - peach) / peach * 100.0


def speedup_to_reference(star_results: Sequence[CampaignResult],
                         reference_paths: float,
                         reference_hours: float) -> Optional[float]:
    """How much faster Peach* reached the baseline's final coverage.

    The paper's speed claim: "achieves the same code coverage at the
    speed of 1.2X-25X".  For each Peach* repetition, find the simulated
    time at which it first covered ``reference_paths`` (what Peach had at
    the end of the budget); the speedup is ``reference_hours / that
    time``, averaged over the repetitions that reached it.
    """
    target = int(round(reference_paths))
    if target <= 0:
        return None
    ratios: List[float] = []
    for result in star_results:
        reached_at = result.time_to_paths(target)
        if reached_at is not None and reached_at > 0:
            ratios.append(reference_hours / reached_at)
    if not ratios:
        return None
    return sum(ratios) / len(ratios)


def compare(peach_results: Sequence[CampaignResult],
            star_results: Sequence[CampaignResult],
            budget_hours: float) -> ComparisonSummary:
    """Full Peach-vs-Peach* summary for one target."""
    peach_final = average_paths_at(peach_results, budget_hours)
    star_final = average_paths_at(star_results, budget_hours)
    return ComparisonSummary(
        target_name=peach_results[0].target_name if peach_results else "?",
        budget_hours=budget_hours,
        peach_final_paths=peach_final,
        star_final_paths=star_final,
        path_increase_pct=path_increase_pct(peach_results, star_results,
                                            budget_hours),
        speedup=speedup_to_reference(star_results, peach_final,
                                     budget_hours),
    )


def merge_crash_reports(results: Sequence[CampaignResult]
                        ) -> CrashDatabase:
    """Fold parallel results into one :class:`CrashDatabase`.

    Each repetition/shard becomes its own database (reports + first-seen
    times) and the databases fold through :meth:`CrashDatabase.merge`,
    so the earliest observation of every unique bug wins no matter what
    order the parallel results came back in.
    """
    merged = CrashDatabase()
    for result in results:
        shard = CrashDatabase()
        for report in result.unique_crashes:
            shard.add(report, result.crash_times.get(report.dedup_key))
        for key, when in result.crash_times.items():
            if key not in shard:  # timed bug without a kept report
                shard.add(CrashReport(kind=key[0], site=key[1],
                                      detail="", packet=b""), when)
        # keep raw totals exact: add() saw only the unique reports
        raw_total = result.stats.get("crashes_total")
        if raw_total is not None:
            shard.total_crashes = raw_total
        merged.merge(shard)
    return merged


def merge_divergence_reports(results: Sequence[CampaignResult]
                             ) -> CrashDatabase:
    """Fold parallel results' divergence findings into one database.

    Divergence reports carry no per-key first-seen table (they ride in
    ``unique_divergences`` only), so the fold is a plain earliest-
    execution-index merge with raw totals from the stats counter.
    """
    merged = CrashDatabase()
    for result in results:
        shard = CrashDatabase()
        for report in result.unique_divergences:
            shard.add(report, None)
        raw_total = result.stats.get("divergences_total")
        if raw_total is not None:
            shard.total_crashes = raw_total
        merged.merge(shard)
    return merged


def time_to_bugs(results: Sequence[CampaignResult]
                 ) -> Dict[Tuple[str, str], float]:
    """Earliest simulated hours each unique bug appeared across reps."""
    return dict(merge_crash_reports(results).first_seen)


def bugs_found(results: Sequence[CampaignResult]) -> Dict[Tuple[str, str], int]:
    """How many repetitions found each unique bug."""
    counts: Dict[Tuple[str, str], int] = {}
    for result in results:
        for key in result.crash_times:
            counts[key] = counts.get(key, 0) + 1
    return counts
