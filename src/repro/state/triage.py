"""Session-level triage: minimize a crashing trace, steps first.

A session crash needs its whole trace to reproduce — the provoking
packet only faults against the server state the prefix built up.  The
minimizer therefore works outside-in:

1. **step drop** — greedily remove whole steps (re-executing the
   candidate trace through a live session each time) until no single
   step can be removed without losing the ``(kind, site)`` key;
2. **step shrink** — run the existing field-aware shrink + byte-level
   ddmin of :mod:`repro.triage.minimize` on the *crashing step's*
   packet, where "reproduces" means "the full candidate trace still
   crashes with the same key".

Bindings are re-derived on every candidate execution (the
:class:`~repro.state.binder.TraceBinder` echoes the server's live
sequence numbers into each step), so dropping a prefix step never
leaves stale framing behind.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.protocols import PROTOCOLS_PATH_PREFIX
from repro.runtime.instrument import make_line_collector
from repro.runtime.target import Target, TraceResult
from repro.sanitizer.report import CrashReport
from repro.state.binder import TraceBinder
from repro.state.trace import TraceStep, decode_trace, encode_trace
from repro.triage.minimize import (
    MinimizationResult, ddmin_bytes, shrink_fields,
)


class TraceChecker:
    """Re-executes candidate traces under the sanitizer.

    The session analog of :class:`~repro.triage.minimize.CrashChecker`:
    every check replays the whole candidate trace against a freshly
    reset server (one live session per candidate) with the hang-budget
    collector attached.  ``executions`` counts *steps*, matching the
    engine's accounting.
    """

    def __init__(self, target_spec, hang_budget: int = 120_000,
                 backend: str = "auto"):
        collector = make_line_collector((PROTOCOLS_PATH_PREFIX,),
                                        hang_budget=hang_budget,
                                        backend=backend)
        self.target = Target(target_spec.make_server, collector)
        self.pit = target_spec.make_pit()
        self.executions = 0
        self._cache: Dict[bytes, Optional[tuple]] = {}

    def run(self, steps: List[TraceStep]) -> TraceResult:
        """One full trace execution (used to rebuild the final report)."""
        binder = TraceBinder(self.pit, steps)
        result = self.target.run_trace(
            [(step.packet, step.model_name) for step in steps], binder)
        self.executions += result.steps_executed
        return result

    def crash_key(self, steps: List[TraceStep]) -> Optional[tuple]:
        """The ``(kind, site)`` the trace triggers, or None."""
        encoded = encode_trace(steps)
        if encoded in self._cache:
            return self._cache[encoded]
        result = self.run(steps)
        key = result.crash.dedup_key if result.crash is not None else None
        self._cache[encoded] = key
        return key


def _drop_steps(checker: TraceChecker, steps: List[TraceStep], key: tuple,
                budget: List[int]) -> Tuple[List[TraceStep], bool]:
    """Greedy whole-step removal to a fixpoint; returns (steps, improved)."""
    improved_any = False
    improved = True
    while improved and len(steps) > 1:
        improved = False
        for index in range(len(steps) - 1, -1, -1):
            if budget[0] <= 0 or len(steps) == 1:
                return steps, improved_any
            candidate = steps[:index] + steps[index + 1:]
            budget[0] -= 1
            if checker.crash_key(candidate) == key:
                steps = candidate
                improved = improved_any = True
                break
    return steps, improved_any


def _crash_index(checker: TraceChecker, steps: List[TraceStep]
                 ) -> Optional[int]:
    result = checker.run(steps)
    return result.crash_step if result.crash is not None else None


def minimize_trace(target_spec, report: CrashReport, *,
                   max_executions: int = 3000,
                   checker: Optional[TraceChecker] = None
                   ) -> MinimizationResult:
    """Minimize one session crash while preserving its dedup key.

    ``original``/``minimized`` of the returned result hold the trace in
    its canonical encoded form (what the workspace persists and the
    reproducer script replays); *max_executions* bounds the number of
    candidate re-executions (each candidate is one whole trace).
    """
    if report.trace is None:
        raise ValueError("minimize_trace needs a session crash "
                         "(report.trace is None)")
    if checker is None:
        checker = TraceChecker(target_spec)
    key = report.dedup_key
    started = checker.executions
    steps = decode_trace(report.trace)
    budget = [max_executions]
    if checker.crash_key(steps) != key:
        return MinimizationResult(
            original=report.trace, minimized=report.trace,
            dedup_key=key, confirmed=False,
            executions=checker.executions - started)

    improved = True
    while improved and budget[0] > 0:
        steps, improved = _drop_steps(checker, steps, key, budget)
        crash_at = _crash_index(checker, steps)
        if crash_at is None:
            break  # cache/limit artifact: keep what reproduced last
        victim = steps[crash_at]

        def reproduces(candidate_packet: bytes) -> bool:
            candidate = list(steps)
            candidate[crash_at] = TraceStep(
                model_name=victim.model_name, packet=candidate_packet,
                state=victim.state, bind=dict(victim.bind),
                capture=dict(victim.capture), expect=victim.expect)
            return checker.crash_key(candidate) == key

        packet = victim.packet
        shrunk = shrink_fields(checker.pit, packet, reproduces, budget)
        shrunk = ddmin_bytes(shrunk, reproduces, budget)
        if len(shrunk) < len(packet):
            steps[crash_at] = TraceStep(
                model_name=victim.model_name, packet=shrunk,
                state=victim.state, bind=dict(victim.bind),
                capture=dict(victim.capture), expect=victim.expect)
            improved = True

    final = checker.run(steps)
    minimized = encode_trace(steps)
    final_report = final.crash
    if final_report is not None:
        final_report.trace = minimized
        final_report.crash_step = final.crash_step
    return MinimizationResult(
        original=report.trace, minimized=minimized, dedup_key=key,
        confirmed=True, executions=checker.executions - started,
        report=final_report)
