"""Crash bucketing and severity classification.

The paper counts unique bugs by ASan-style ``(kind, site)`` dedup.  Two
distinct bugs can share a summary line — e.g. two packet shapes that
reach the same checked accessor through different handler paths — so
triage refines the key with the *call-site-sequence hash*: the tail of
the instrumentation journal captured at fault time
(:func:`repro.runtime.instrument.capture_crash_context`).  Severity is
classified from the fault kind the way security teams rank ASan
verdicts: lifetime violations (UAF/double-free) and out-of-bounds
*writes* are treated as exploitable until proven otherwise, wild reads
as denial-of-service.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.sanitizer.report import CrashReport
from repro.util import fs_slug

#: severity ranks, most severe first (index = sort order)
SEVERITY_ORDER: Tuple[str, ...] = ("critical", "high", "medium", "low")

_KIND_SEVERITY = {
    "heap-use-after-free": "critical",
    "double-free": "critical",
    "heap-buffer-overflow": "high",
    "SEGV": "medium",
    "MEMORY-FAULT": "low",
    # differential-oracle findings: a strict/lenient disagreement is the
    # raw material of request smuggling (medium); two stacks classifying
    # the same frame differently is a robustness signal (low)
    "parse-divergence": "medium",
    "cross-stack-divergence": "low",
}


def classify_severity(report: CrashReport) -> str:
    """Severity rank of one crash report.

    Kind sets the base rank; an out-of-bounds *write* (the detail line
    records the access direction) escalates a heap-buffer-overflow to
    critical, since it corrupts neighbouring allocations rather than
    leaking them.
    """
    severity = _KIND_SEVERITY.get(report.kind, "low")
    if severity == "high" and report.detail.startswith("write"):
        severity = "critical"
    return severity


def severity_rank(severity: str) -> int:
    """Sort index for a severity label (unknown labels sort last)."""
    try:
        return SEVERITY_ORDER.index(severity)
    except ValueError:
        return len(SEVERITY_ORDER)


@dataclass
class CrashBucket:
    """All observations of one refined crash identity."""

    kind: str
    site: str
    context_hash: int
    severity: str
    reports: List[CrashReport] = field(default_factory=list)

    @property
    def key(self) -> tuple:
        return (self.kind, self.site, self.context_hash)

    @property
    def representative(self) -> CrashReport:
        """The earliest observation (lowest execution index)."""
        return min(self.reports, key=lambda r: r.execution_index)

    @property
    def count(self) -> int:
        return len(self.reports)

    def slug(self) -> str:
        """Filesystem-safe identity used for reproducer artifacts."""
        return (f"{fs_slug(f'{self.kind}_{self.site}')}"
                f"_{self.context_hash:08x}")


def bucket_crashes(reports: Iterable[CrashReport]
                   ) -> List[CrashBucket]:
    """Group reports by refined bucket key, most severe first.

    Within a severity rank, buckets keep discovery order (earliest
    representative first) so output is stable across runs.
    """
    buckets: Dict[tuple, CrashBucket] = {}
    for report in reports:
        key = report.bucket_key
        bucket = buckets.get(key)
        if bucket is None:
            buckets[key] = bucket = CrashBucket(
                kind=report.kind, site=report.site,
                context_hash=report.context_hash,
                severity=classify_severity(report))
        bucket.reports.append(report)
    return sorted(buckets.values(),
                  key=lambda b: (severity_rank(b.severity),
                                 b.representative.execution_index,
                                 b.key))
