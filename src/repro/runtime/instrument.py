"""Instrumentation collectors: how basic-block ids reach the coverage map.

The paper compiles targets with ``Peach*-clang`` (an LLVM pass inserting
the edge-count snippet at branch points).  Our targets are Python, so two
collectors are provided:

* :class:`TracingCollector` — zero-modification instrumentation via
  ``sys.settrace``: every executed line of the target's modules becomes a
  basic block whose id is a stable hash of ``(filename, lineno)``.  This
  matches the LLVM pass's granularity closely (one block per branch arm)
  and is the default.
* :class:`ExplicitCollector` — targets call :meth:`ExplicitCollector.hit`
  with a label at interesting points; useful for speed-critical loops and
  for unit-testing the coverage plumbing.

Both feed the same :class:`~repro.runtime.coverage.CoverageMap` and also
count executed blocks so the harness can flag hangs (runaway loops).
"""

from __future__ import annotations

import sys
from typing import Dict, Iterable, Optional

from repro.runtime.coverage import CoverageMap
from repro.util import fnv1a32


class HangBudgetExceeded(Exception):
    """Raised inside a traced execution that exceeded its block budget."""


class Collector:
    """Common interface: a context manager scoped to one execution."""

    def __init__(self, coverage_map: Optional[CoverageMap] = None,
                 hang_budget: int = 200_000):
        self.map = coverage_map if coverage_map is not None else CoverageMap()
        self.hang_budget = hang_budget
        self.blocks_executed = 0

    def begin(self) -> None:
        self.map.fast_reset()
        self.blocks_executed = 0

    def end(self) -> None:
        pass

    def __enter__(self):
        self.begin()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.end()
        return False


class ExplicitCollector(Collector):
    """Targets call :meth:`hit` with a stable label at each branch point."""

    def __init__(self, coverage_map: Optional[CoverageMap] = None,
                 hang_budget: int = 200_000):
        super().__init__(coverage_map, hang_budget)
        self._label_ids: Dict[str, int] = {}

    def hit(self, label: str) -> None:
        """Record entry into the basic block named *label*."""
        block_id = self._label_ids.get(label)
        if block_id is None:
            block_id = fnv1a32(label)
            self._label_ids[label] = block_id
        self.map.visit(block_id)
        self.blocks_executed += 1
        if self.blocks_executed > self.hang_budget:
            raise HangBudgetExceeded(label)


class TracingCollector(Collector):
    """``sys.settrace``-based line/edge coverage scoped to target modules.

    Parameters
    ----------
    module_prefixes:
        Only code objects whose ``co_filename`` contains one of these
        substrings are traced; everything else (the fuzzer itself, the
        stdlib) is skipped at call granularity, keeping overhead low.
    """

    def __init__(self, module_prefixes: Iterable[str],
                 coverage_map: Optional[CoverageMap] = None,
                 hang_budget: int = 200_000):
        super().__init__(coverage_map, hang_budget)
        self.module_prefixes = tuple(module_prefixes)
        self._line_ids: Dict[tuple, int] = {}
        self._file_match_cache: Dict[str, bool] = {}
        self._saved_trace = None

    def _file_matches(self, filename: str) -> bool:
        cached = self._file_match_cache.get(filename)
        if cached is None:
            cached = any(prefix in filename
                         for prefix in self.module_prefixes)
            self._file_match_cache[filename] = cached
        return cached

    def begin(self) -> None:
        super().begin()
        self._saved_trace = sys.gettrace()
        sys.settrace(self._global_trace)

    def end(self) -> None:
        sys.settrace(self._saved_trace)
        self._saved_trace = None

    # -- trace callbacks -----------------------------------------------------

    def _global_trace(self, frame, event, arg):
        if event != "call":
            return None
        if not self._file_matches(frame.f_code.co_filename):
            return None
        return self._local_trace

    def _local_trace(self, frame, event, arg):
        if event != "line":
            return self._local_trace
        key = (frame.f_code.co_filename, frame.f_lineno)
        block_id = self._line_ids.get(key)
        if block_id is None:
            block_id = fnv1a32(f"{key[0]}:{key[1]}")
            self._line_ids[key] = block_id
        self.map.visit(block_id)
        self.blocks_executed += 1
        if self.blocks_executed > self.hang_budget:
            raise HangBudgetExceeded(f"{key[0]}:{key[1]}")
        return self._local_trace
