"""Puzzle corpus: cracked chunks keyed by construction-rule signature.

The File Cracker (paper Alg. 2) deposits every sub-tree of a valuable
seed's InsTree here; the semantic-aware generator's ``GETDONOR`` (paper
Alg. 3 line 10) queries it by the construction rule of the chunk being
generated.

Puzzles are stored with a *deposit count*: a chunk value that appears in
many valuable seeds (e.g. a data-model default that every deep packet
carries, or a rare in-range quantity) is a better donor than a one-off
byte pattern that happened to ride along on a single new path.  Donor
sampling is therefore frequency-weighted; the per-rule store is bounded,
evicting the least-deposited entry first.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.model.fields import Field, RuleSignature


class PuzzleCorpus:
    """Donor store for semantic-aware generation.

    Parameters
    ----------
    rng:
        Seeded RNG used for eviction ties and donor sampling.
    max_per_rule:
        Bound on stored distinct puzzles per construction-rule signature.
    """

    def __init__(self, rng: Optional[random.Random] = None,
                 max_per_rule: int = 64):
        self.rng = rng if rng is not None else random.Random(0)
        self.max_per_rule = max_per_rule
        # signature id -> {puzzle bytes: deposit count}
        self._store: Dict[int, Dict[bytes, int]] = {}
        self.total_added = 0
        self.total_reinforced = 0

    # ------------------------------------------------------------------
    # deposit
    # ------------------------------------------------------------------

    def add(self, signature: RuleSignature, puzzle: bytes) -> bool:
        """Store (or reinforce) one puzzle; True when it was new."""
        key = signature.stable_id()
        bucket = self._store.setdefault(key, {})
        if puzzle in bucket:
            bucket[puzzle] += 1
            self.total_reinforced += 1
            return False
        if len(bucket) >= self.max_per_rule:
            victim = min(bucket, key=lambda item: (bucket[item],
                                                   self.rng.random()))
            del bucket[victim]
        bucket[puzzle] = 1
        self.total_added += 1
        return True

    def add_all(self, puzzles) -> int:
        """Store an iterable of ``(signature, bytes)``; returns new count."""
        added = 0
        for signature, puzzle in puzzles:
            if self.add(signature, puzzle):
                added += 1
        return added

    # ------------------------------------------------------------------
    # GETDONOR
    # ------------------------------------------------------------------

    def donors(self, rule: Field) -> Tuple[bytes, ...]:
        """All stored puzzles conforming to *rule* (paper's Candidates)."""
        bucket = self._store.get(rule.signature().stable_id())
        if not bucket:
            return ()
        return tuple(bucket)

    def sample_donors(self, rule: Field, k: int) -> List[bytes]:
        """Up to *k* distinct donors, sampled ∝ their deposit counts."""
        bucket = self._store.get(rule.signature().stable_id())
        if not bucket:
            return []
        entries = list(bucket.items())
        if len(entries) <= k:
            chosen = [puzzle for puzzle, _count in entries]
            self.rng.shuffle(chosen)
            return chosen
        chosen: List[bytes] = []
        weights = [count for _puzzle, count in entries]
        for _ in range(k):
            total = sum(weights)
            if total <= 0:
                break
            roll = self.rng.random() * total
            acc = 0.0
            for index, weight in enumerate(weights):
                acc += weight
                if roll < acc:
                    chosen.append(entries[index][0])
                    weights[index] = 0  # without replacement
                    break
        return chosen

    def pick_donor(self, rule: Field) -> Optional[bytes]:
        """One frequency-weighted donor for *rule*, or None."""
        sampled = self.sample_donors(rule, 1)
        return sampled[0] if sampled else None

    def has_donors(self, rule: Field) -> bool:
        return bool(self._store.get(rule.signature().stable_id()))

    def deposit_count(self, rule: Field, puzzle: bytes) -> int:
        """How many times *puzzle* was deposited for *rule* (0 if absent)."""
        bucket = self._store.get(rule.signature().stable_id())
        if not bucket:
            return 0
        return bucket.get(puzzle, 0)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self._store

    def rule_count(self) -> int:
        """Distinct construction-rule signatures with at least one donor."""
        return len(self._store)

    def puzzle_count(self) -> int:
        return sum(len(bucket) for bucket in self._store.values())

    def __len__(self) -> int:
        return self.puzzle_count()
