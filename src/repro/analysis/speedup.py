"""Speed headline reproduction (§V-B): same coverage at 1.2X-25X.

For each project, measure how much faster Peach* reaches the path
coverage that baseline Peach achieves by the end of the budget, and the
final path increase — the two headline numbers of the paper's abstract.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from repro.core.campaign import (
    CampaignConfig, CampaignTask, run_campaign_batch,
)
from repro.core.stats import ComparisonSummary, compare
from repro.protocols import TargetSpec, all_targets


@dataclass
class HeadlineReport:
    """Per-target comparison rows plus aggregate headline numbers."""

    summaries: List[ComparisonSummary]

    @property
    def average_increase_pct(self) -> float:
        if not self.summaries:
            return 0.0
        return sum(s.path_increase_pct for s in self.summaries) / \
            len(self.summaries)

    @property
    def speedup_range(self) -> tuple:
        speeds = [s.speedup for s in self.summaries if s.speedup]
        if not speeds:
            return (None, None)
        return (min(speeds), max(speeds))

    def render(self) -> str:
        lines = [
            "Peach vs Peach*: paths covered and speed to equal coverage",
            "-" * 66,
        ]
        lines.extend(summary.row() for summary in self.summaries)
        lines.append("-" * 66)
        low, high = self.speedup_range
        if low is not None:
            lines.append(
                f"speedup range {low:.1f}X-{high:.1f}X "
                "(paper: 1.2X-25X)")
        lines.append(
            f"average path increase {self.average_increase_pct:+.2f}% "
            "(paper: +27.35%, range 8.35%-36.84%)")
        return "\n".join(lines)


def run_headline(targets: Optional[List[TargetSpec]] = None, *,
                 repetitions: int = 3, budget_hours: float = 24.0,
                 base_seed: int = 50,
                 config: Optional[CampaignConfig] = None,
                 jobs: Optional[int] = 1) -> HeadlineReport:
    """Run the full §V-B comparison across the selected targets.

    The whole sweep (targets × engines × repetitions) is scheduled as one
    batch, so ``jobs`` > 1 fans every campaign out across processes;
    ``jobs=None`` uses :func:`~repro.core.campaign.default_worker_count`.
    Results are identical to the serial sweep — only wall-clock changes.
    """
    if targets is None:
        targets = list(all_targets())
    cfg = replace(config if config is not None else CampaignConfig(),
                  budget_hours=budget_hours)
    tasks = []
    for spec in targets:
        for engine in ("peach", "peach-star"):
            tasks.extend(
                CampaignTask(engine, spec.name, base_seed + 1000 * rep, cfg)
                for rep in range(repetitions))
    results = run_campaign_batch(tasks, max_workers=jobs)
    summaries = []
    for index, _spec in enumerate(targets):
        start = index * 2 * repetitions
        peach = results[start:start + repetitions]
        star = results[start + repetitions:start + 2 * repetitions]
        summaries.append(compare(peach, star, budget_hours))
    return HeadlineReport(summaries=summaries)
