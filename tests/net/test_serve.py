"""``peachstar serve``: the asyncio session server behind the TCP port."""

import asyncio
import json

import pytest

from repro.net.framing import (
    MSG_ACK, MSG_CRASH, MSG_DATA, MSG_HANG, MSG_NONE, MSG_RESET,
    MSG_RESPONSE, encode_envelope, framer_for, read_envelope,
)
from repro.net.serve import ServeApp, bound_address, start_serving
from repro.protocols import get_target
from repro.runtime.instrument import HangBudgetExceeded
from repro.runtime.target import Target
from repro.sanitizer.errors import HeapBufferOverflow


class FakeServer:
    """A scripted protocol server: the payload tail picks the outcome."""

    def __init__(self):
        self.handled = 0
        self.resets = 0

    def handle_packet(self, heap, data):
        self.handled += 1
        if data.endswith(b"CRASH"):
            raise HeapBufferOverflow("fake.c:42", "scripted overflow")
        if data.endswith(b"HANG"):
            raise HangBudgetExceeded()
        if data.endswith(b"NONE"):
            return None
        return b"seen=%d" % self.handled

    def reset(self):
        self.resets += 1
        self.handled = 0


class FakeSpec:
    name = "fake"
    framing = "apci"  # raw mode slices the stream with the APCI framer
    make_server = FakeServer


def apci(payload):
    """Wrap *payload* in a minimal APCI frame (0x68 + length octet)."""
    return b"\x68" + bytes((len(payload),)) + payload


def serve(scenario, spec=FakeSpec, **kwargs):
    """Run *scenario(app, server)* against a freshly-bound ephemeral port."""

    async def main():
        app, server = await start_serving(spec, **kwargs)
        try:
            return await scenario(app, server)
        finally:
            server.close()
            await server.wait_closed()

    return asyncio.run(main())


async def connect(server):
    return await asyncio.open_connection(*bound_address(server))


async def ask(reader, writer, kind, payload=b""):
    writer.write(encode_envelope(kind, payload))
    await writer.drain()
    return await read_envelope(reader)


async def hangup(writer):
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass


class TestEnvelopeSessions:
    def test_port_zero_binds_ephemeral(self):
        async def scenario(app, server):
            return bound_address(server)

        host, port = serve(scenario)
        assert host == "127.0.0.1"
        assert port > 0

    def test_data_reset_data_round_trip(self):
        async def scenario(app, server):
            reader, writer = await connect(server)
            first = await ask(reader, writer, MSG_DATA, b"one")
            second = await ask(reader, writer, MSG_DATA, b"two")
            acked = await ask(reader, writer, MSG_RESET)
            after = await ask(reader, writer, MSG_DATA, b"three")
            await hangup(writer)
            return first, second, acked, after, app.executions

        first, second, acked, after, executions = serve(scenario)
        assert first == (MSG_RESPONSE, b"seen=1")
        assert second == (MSG_RESPONSE, b"seen=2")
        assert acked == (MSG_ACK, b"")
        # the reset re-armed the session: the counter started over
        assert after == (MSG_RESPONSE, b"seen=1")
        assert executions == 3

    def test_outcome_kinds(self):
        async def scenario(app, server):
            reader, writer = await connect(server)
            none = await ask(reader, writer, MSG_DATA, b"NONE")
            hang = await ask(reader, writer, MSG_DATA, b"HANG")
            crash = await ask(reader, writer, MSG_DATA, b"CRASH")
            await hangup(writer)
            return none, hang, crash

        none, hang, crash = serve(scenario)
        assert none == (MSG_NONE, b"")
        assert hang == (MSG_HANG, b"")
        kind, payload = crash
        assert kind == MSG_CRASH
        blob = json.loads(payload.decode("utf-8"))
        assert blob["kind"] == "heap-buffer-overflow"
        assert blob["site"] == "fake.c:42"
        assert blob["call_sites"] == []

    def test_unknown_envelope_kind_drops_the_session(self):
        async def scenario(app, server):
            reader, writer = await connect(server)
            writer.write(encode_envelope(b"X", b""))
            await writer.drain()
            message = await read_envelope(reader)  # server hangs up
            await hangup(writer)
            return message

        assert serve(scenario) is None

    def test_sessions_are_isolated_by_default(self):
        async def scenario(app, server):
            r1, w1 = await connect(server)
            r2, w2 = await connect(server)
            await ask(r1, w1, MSG_DATA, b"a")
            await ask(r1, w1, MSG_DATA, b"b")
            other = await ask(r2, w2, MSG_DATA, b"c")
            await hangup(w1)
            await hangup(w2)
            return other, app.connections

        other, connections = serve(scenario)
        # the second connection got its own server: counter starts at 1
        assert other == (MSG_RESPONSE, b"seen=1")
        assert connections == 2

    def test_shared_state_races_one_server(self):
        async def scenario(app, server):
            r1, w1 = await connect(server)
            r2, w2 = await connect(server)
            await ask(r1, w1, MSG_DATA, b"a")
            await ask(r1, w1, MSG_DATA, b"b")
            other = await ask(r2, w2, MSG_DATA, b"c")
            await hangup(w1)
            await hangup(w2)
            return other

        other = serve(scenario, shared_state=True)
        # both connections hit the same server instance
        assert other == (MSG_RESPONSE, b"seen=3")

    def test_envelope_dispatch_matches_in_process_target(self):
        spec = get_target("iec104")
        pit = spec.make_pit()
        wires = [model.to_wire(model.build_default())
                 for model in pit.models()]

        async def scenario(app, server):
            out = []
            for wire in wires:
                reader, writer = await connect(server)
                await ask(reader, writer, MSG_RESET)
                out.append(await ask(reader, writer, MSG_DATA, wire))
                await hangup(writer)
            return out

        served = serve(scenario, spec=spec)
        for wire, (kind, payload) in zip(wires, served):
            local = Target(spec.make_server, None).run(wire)
            if local.response is None:
                assert kind == MSG_NONE
            else:
                assert (kind, payload) == (MSG_RESPONSE, local.response)


class TestRawSessions:
    def test_response_travels_in_protocol_framing(self):
        spec = get_target("iec104")
        pit = spec.make_pit()
        model = pit.model("iec104.startdt")
        wire = model.to_wire(model.build_default())
        expected = Target(spec.make_server, None).run(wire).response
        assert expected is not None

        async def scenario(app, server):
            reader, writer = await connect(server)
            writer.write(wire)
            await writer.drain()
            data = await asyncio.wait_for(reader.read(4096), 5.0)
            await hangup(writer)
            return data

        data = serve(scenario, spec=spec, framing="raw")
        framer = framer_for(spec.framing)
        assert framer.feed(data) == [expected]

    def test_crash_closes_the_connection(self):
        async def scenario(app, server):
            reader, writer = await connect(server)
            writer.write(apci(b"CRASH"))
            await writer.drain()
            data = await asyncio.wait_for(reader.read(4096), 5.0)
            await hangup(writer)
            return data

        # a crashed raw server drops its client: EOF, no bytes
        assert serve(scenario, framing="raw") == b""

    def test_silence_on_none_and_hang(self):
        async def scenario(app, server):
            reader, writer = await connect(server)
            writer.write(apci(b"NONE") + apci(b"HANG") + apci(b"ok"))
            await writer.drain()
            data = await asyncio.wait_for(reader.read(4096), 5.0)
            await hangup(writer)
            return data

        # only the third frame answers; the first two stay silent
        assert serve(scenario, framing="raw") == b"seen=3"


class TestDispatchUnit:
    def test_dispatch_without_event_loop(self):
        app = ServeApp(FakeSpec)
        session = app._session()
        assert app._dispatch(session, b"ping") == (MSG_RESPONSE, b"seen=1")
        assert app._dispatch(session, b"NONE") == (MSG_NONE, b"")
        kind, payload = app._dispatch(session, b"CRASH")
        assert kind == MSG_CRASH
        assert json.loads(payload)["kind"] == "heap-buffer-overflow"
        assert app.executions == 3
