"""IEC 60870-5-104 APCI codec — safe helpers.

Frame shapes (APCI = start byte 0x68, length, four control octets):

* I-format: control octet 1 has bit0 = 0; carries send/recv sequence
  numbers and an ASDU.
* S-format: control octet 1 low bits = 0b01; supervisory ack.
* U-format: control octet 1 low bits = 0b11; STARTDT/STOPDT/TESTFR.
"""

from __future__ import annotations

START_BYTE = 0x68
APCI_CONTROL_LEN = 4
MIN_LENGTH = 4
MAX_LENGTH = 253

# U-frame function bits (control octet 1)
U_STARTDT_ACT = 0x07
U_STARTDT_CON = 0x0B
U_STOPDT_ACT = 0x13
U_STOPDT_CON = 0x23
U_TESTFR_ACT = 0x43
U_TESTFR_CON = 0x83

# ASDU type ids handled by the simple implementation
M_SP_NA_1 = 1
C_SC_NA_1 = 45
C_IC_NA_1 = 100
C_CS_NA_1 = 103


def build_u_frame(function: int) -> bytes:
    """Build a U-format frame with *function* in control octet 1."""
    return bytes((START_BYTE, MIN_LENGTH, function, 0x00, 0x00, 0x00))


def build_s_frame(recv_seq: int) -> bytes:
    """Build an S-format acknowledgement for *recv_seq*."""
    ctrl3 = (recv_seq << 1) & 0xFF
    ctrl4 = (recv_seq >> 7) & 0xFF
    return bytes((START_BYTE, MIN_LENGTH, 0x01, 0x00, ctrl3, ctrl4))


def build_i_frame(send_seq: int, recv_seq: int, asdu: bytes) -> bytes:
    """Build an I-format frame wrapping *asdu*."""
    length = APCI_CONTROL_LEN + len(asdu)
    ctrl = bytes((
        (send_seq << 1) & 0xFE,
        (send_seq >> 7) & 0xFF,
        (recv_seq << 1) & 0xFF,
        (recv_seq >> 7) & 0xFF,
    ))
    return bytes((START_BYTE, length)) + ctrl + asdu


def build_asdu(type_id: int, vsq: int, cot: int, ca: int,
               ioa: int, payload: bytes = b"") -> bytes:
    """Build the simple-profile ASDU used by the IEC104 project."""
    return (bytes((type_id, vsq, cot, 0x00))
            + ca.to_bytes(2, "little")
            + ioa.to_bytes(3, "little")
            + payload)


def frame_kind(frame: bytes) -> str:
    """Classify a frame as ``"I"``, ``"S"``, ``"U"`` or ``"invalid"``."""
    if len(frame) < 6 or frame[0] != START_BYTE:
        return "invalid"
    ctrl1 = frame[2]
    if ctrl1 & 0x01 == 0:
        return "I"
    if ctrl1 & 0x03 == 0x01:
        return "S"
    return "U"
