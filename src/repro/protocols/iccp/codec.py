"""libiec_iccp_mod-analog codec: TASE.2 (ICCP) over MMS-lite.

ICCP/TASE.2 reuses the MMS session (TPKT/COTP/BER) but adds its own
object vocabulary: bilateral tables, transfer sets, data values and
information messages.  Like the real ``libiec_iccp_mod`` fork, the
framing code here is an independent copy rather than a shared library.
"""

from __future__ import annotations

from typing import Optional

from repro.protocols.common.ber import (
    encode_integer, encode_tlv, encode_visible_string,
)

TPKT_VERSION = 3
COTP_DT = 0xF0
COTP_EOT = 0x80

# MMS PDU tags (subset used by TASE.2)
MMS_CONFIRMED_REQUEST = 0xA0
MMS_CONFIRMED_RESPONSE = 0xA1
MMS_CONFIRMED_ERROR = 0xA2
MMS_UNCONFIRMED = 0xA3       # information reports travel unconfirmed
MMS_INITIATE_REQUEST = 0xA8
MMS_INITIATE_RESPONSE = 0xA9

# service tags
SVC_READ = 0xA4
SVC_WRITE = 0xA5
SVC_INFO_REPORT = 0xA0       # within an unconfirmed PDU

# inner TLV tags
TAG_NAME = 0x1A              # VisibleString object name
TAG_INDEX = 0x82             # alternate-access element index
TAG_DATA_OCTETS = 0x89       # octet-string data value content
TAG_INFO_REF = 0x85          # information message reference
TAG_LOCAL_REF = 0x86
TAG_MSG_ID = 0x87
TAG_CONTENT = 0x88

BILATERAL_TABLE_ID = "BLT-1"

TRANSFER_SETS = ("TSet_1", "TSet_2", "TSet_3", "TSet_4")
DATA_VALUES = ("DV_A", "DV_B", "DV_C", "DV_D", "DV_E", "DV_F")


def build_tpkt_cotp(payload: bytes) -> bytes:
    """Wrap an MMS payload in COTP DT + TPKT."""
    cotp = bytes((2, COTP_DT, COTP_EOT))
    total = 4 + len(cotp) + len(payload)
    return bytes((TPKT_VERSION, 0)) + total.to_bytes(2, "big") + cotp + payload


def build_associate(bilateral_table: str = BILATERAL_TABLE_ID) -> bytes:
    """TASE.2 associate: initiate-request carrying the bilateral table id."""
    body = encode_visible_string(bilateral_table, tag=0x80)
    return build_tpkt_cotp(encode_tlv(MMS_INITIATE_REQUEST, body))


def build_read(invoke_id: int, name: str,
               index: Optional[int] = None) -> bytes:
    """Read of a transfer set or data value, optionally element-indexed."""
    body = encode_visible_string(name, tag=TAG_NAME)
    if index is not None:
        body += encode_tlv(TAG_INDEX, index.to_bytes(2, "big"))
    service = encode_tlv(SVC_READ, body)
    pdu = encode_tlv(MMS_CONFIRMED_REQUEST,
                     encode_integer(invoke_id) + service)
    return build_tpkt_cotp(pdu)


def build_write(invoke_id: int, name: str, data: bytes) -> bytes:
    """Write of a data value's octets."""
    body = (encode_visible_string(name, tag=TAG_NAME)
            + encode_tlv(TAG_DATA_OCTETS, data))
    service = encode_tlv(SVC_WRITE, body)
    pdu = encode_tlv(MMS_CONFIRMED_REQUEST,
                     encode_integer(invoke_id) + service)
    return build_tpkt_cotp(pdu)


def build_info_report(info_ref: int, local_ref: int, msg_id: int,
                      content: bytes) -> bytes:
    """Information message: unconfirmed PDU with reference numbers."""
    body = (encode_tlv(TAG_INFO_REF, info_ref.to_bytes(2, "big"))
            + encode_tlv(TAG_LOCAL_REF, local_ref.to_bytes(2, "big"))
            + encode_tlv(TAG_MSG_ID, msg_id.to_bytes(2, "big"))
            + encode_tlv(TAG_CONTENT, content))
    service = encode_tlv(SVC_INFO_REPORT, body)
    return build_tpkt_cotp(encode_tlv(MMS_UNCONFIRMED, service))
