"""Valuable-seed pool: AFL-queue-style path accounting (paper §IV-B).

A seed is *valuable* when its execution "reaches a new program execution
state that has not appeared before" — i.e. its bucketed coverage map
contains bits the global virgin map has not seen.  The pool retains those
seeds (with their InsTrees, so the cracker need not re-parse) and its
size is the "paths covered" metric of the paper's Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.model.instree import InsTree
from repro.runtime.coverage import CoverageMap, GlobalCoverage


@dataclass(slots=True)
class ValuableSeed:
    """One retained seed: the packet, its origin model, and when it landed."""

    packet: bytes
    model_name: str
    tree: Optional[InsTree]
    execution_index: int
    sim_time_ms: float
    edges_touched: int
    #: bucketed path identity of the discovering execution; persisted by
    #: the campaign workspace and pinned by the resume-determinism tests
    path_hash: int = 0


class SeedPool:
    """Coverage feedback + retained valuable seeds.

    ``consider`` runs once per execution, so it leans on the sparse
    coverage pipeline: ``merge`` walks the execution map's touched-edge
    journal and ``edge_count`` is O(1), never scanning the full map.
    """

    __slots__ = ("coverage", "seeds")

    def __init__(self, coverage: Optional[GlobalCoverage] = None):
        self.coverage = coverage if coverage is not None else GlobalCoverage()
        self.seeds: List[ValuableSeed] = []

    def consider(self, packet: bytes, model_name: str,
                 tree: Optional[InsTree], coverage_map: CoverageMap,
                 execution_index: int, sim_time_ms: float
                 ) -> Optional[ValuableSeed]:
        """Fold an execution's coverage in; return the seed if valuable."""
        if not self.coverage.merge(coverage_map):
            return None
        seed = ValuableSeed(
            packet=packet,
            model_name=model_name,
            tree=tree,
            execution_index=execution_index,
            sim_time_ms=sim_time_ms,
            edges_touched=coverage_map.edge_count(),
            path_hash=coverage_map.path_hash(),
        )
        self.seeds.append(seed)
        return seed

    def force_add(self, packet: bytes, model_name: str,
                  tree: Optional[InsTree], coverage_map: CoverageMap,
                  execution_index: int, sim_time_ms: float) -> ValuableSeed:
        """Retain a seed regardless of the virgin map's verdict.

        Divergence steering (``--steer-divergence``) uses this for a
        seed whose coverage is stale but whose *behavior* is new (a
        first-seen parse-divergence site).  The map's bits were already
        folded into the virgin map by the earlier ``consider`` call, so
        no merge happens here — which also keeps journal-replay resume
        bit-identical (re-ORing already-set bits is idempotent).
        """
        seed = ValuableSeed(
            packet=packet,
            model_name=model_name,
            tree=tree,
            execution_index=execution_index,
            sim_time_ms=sim_time_ms,
            edges_touched=coverage_map.edge_count(),
            path_hash=coverage_map.path_hash(),
        )
        self.seeds.append(seed)
        return seed

    @property
    def path_count(self) -> int:
        """Paths covered = number of valuable seeds retained (AFL queue)."""
        return len(self.seeds)

    @property
    def edge_count(self) -> int:
        return self.coverage.edge_coverage()

    def __len__(self) -> int:
        return len(self.seeds)

    def __iter__(self):
        return iter(self.seeds)
