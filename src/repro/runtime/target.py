"""Target harness: run one packet against an instrumented protocol server.

``RUNTARGET`` of paper Alg. 1: feed the generated seed to the program
under test, watch for crashes and hangs, and (for Peach*) collect the
edge-coverage feedback.  Servers are in-process objects with a
``handle_packet(heap, data) -> bytes | None`` method; each execution gets
a fresh :class:`~repro.sanitizer.heap.SimHeap` so crashes are a
deterministic function of the packet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.runtime.coverage import CoverageMap
from repro.runtime.instrument import (
    Collector, HangBudgetExceeded, capture_crash_context,
)
from repro.sanitizer.errors import MemoryFault
from repro.sanitizer.heap import SimHeap
from repro.sanitizer.report import CrashReport, report_from_fault


@dataclass(slots=True)
class ExecResult:
    """Outcome of one target execution (slotted: one per fuzz iteration)."""

    coverage: Optional[CoverageMap]
    crash: Optional[CrashReport]
    hang: bool
    response: Optional[bytes]
    blocks_executed: int = 0
    #: frames actually handed to the server after the channel (None when
    #: no channel is configured — the packet itself was delivered)
    delivered: Optional[List[bytes]] = None

    @property
    def crashed(self) -> bool:
        return self.crash is not None


@dataclass(slots=True)
class TraceResult:
    """Outcome of one whole-trace (session) execution.

    Field-compatible with :class:`ExecResult` where the engine and the
    campaign driver look (``coverage``/``crash``/``hang``/``response``/
    ``blocks_executed``/``crashed``): ``coverage`` is the map
    *accumulated across every executed step* (the trace's path
    identity), ``crash`` the fault of the step that raised, attributed
    by ``crash_step``.
    """

    coverage: Optional[CoverageMap]
    crash: Optional[CrashReport]
    hang: bool
    #: the last step's response (ExecResult compatibility)
    response: Optional[bytes]
    blocks_executed: int = 0
    #: how many steps actually executed (a crash/hang stops the trace)
    steps_executed: int = 0
    #: index of the step that crashed (or hung), None when none did
    crash_step: Optional[int] = None
    #: per-step responses, as observed (None = no reply)
    responses: List[Optional[bytes]] = field(default_factory=list)
    #: per-step wire bytes as actually sent (post-binding)
    sent: List[bytes] = field(default_factory=list)
    #: per-step frames delivered after the channel (populated only when
    #: a channel is configured; ``sent`` keeps the pre-channel wire)
    delivered: List[List[bytes]] = field(default_factory=list)

    @property
    def crashed(self) -> bool:
        return self.crash is not None


class ProtocolServer:
    """Interface the six protocol targets implement."""

    #: short name matching the paper's project table (e.g. "libmodbus")
    name = "server"

    def handle_packet(self, heap: SimHeap, data: bytes) -> Optional[bytes]:
        """Process one request frame; may raise MemoryFault."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear per-connection state between executions (default: none)."""


class Target:
    """Binds a server factory to an instrumentation collector.

    Parameters
    ----------
    server_factory:
        Zero-argument callable returning a fresh :class:`ProtocolServer`.
        The server object is reused across executions (its ``reset`` is
        called); the heap is always fresh.
    collector:
        The instrumentation collector, or ``None`` for an uninstrumented
        baseline run (plain Peach collects no feedback during fuzzing —
        the paper adds the path-coverage *measurement* framework to both
        tools, which :class:`repro.core.campaign.Campaign` models
        separately).
    channel:
        Optional :class:`repro.channel.faults.Channel` sitting between
        the harness and the server.  ``None`` keeps today's path (the
        packet itself is the delivered frame, zero overhead); a channel
        is reset at each run/trace boundary and consulted per step for
        the frames to actually deliver.
    """

    #: the in-process target supports the batched execution pipeline
    #: (:meth:`run_into` recording into a caller-pooled map); the
    #: live-network SocketTarget duck-type does not and the engine falls
    #: back to per-iteration execution there
    supports_batch = True

    def __init__(self, server_factory: Callable[[], ProtocolServer],
                 collector: Optional[Collector] = None,
                 channel=None):
        self.server = server_factory()
        self.collector = collector
        self.channel = channel
        self.executions = 0

    def close(self) -> None:
        """Release transport resources (none in-process).

        Part of the target contract so the campaign driver can tear
        every target kind down uniformly — the live-network
        :class:`repro.net.target.SocketTarget` (which duck-types this
        class) closes its connections, served loopback server and event
        loop here.
        """

    def run(self, packet: bytes, model_name: Optional[str] = None) -> ExecResult:
        """Execute *packet* against the server; never lets faults escape."""
        self.executions += 1
        heap = SimHeap()
        self.server.reset()
        if self.channel is None:
            frames: Sequence[bytes] = (packet,)
            delivered = None
        else:
            self.channel.reset()
            frames = self.channel.transmit(0, packet)
            frames.extend(self.channel.flush())
            delivered = list(frames)
        crash = None
        hang = False
        response = None
        blocks = 0
        if self.collector is not None:
            with self.collector:
                crash, hang, response = self._dispatch_frames(
                    heap, frames, model_name)
            blocks = self.collector.blocks_executed
            coverage = self.collector.map
        else:
            crash, hang, response = self._dispatch_frames(
                heap, frames, model_name)
            coverage = None
        return ExecResult(coverage=coverage, crash=crash, hang=hang,
                          response=response, blocks_executed=blocks,
                          delivered=delivered)

    def run_into(self, packet: bytes, model_name: Optional[str],
                 coverage_map: CoverageMap) -> ExecResult:
        """One execution recording into *coverage_map* (batched hot path).

        Semantics are identical to :meth:`run` without a channel — fresh
        heap, server reset outside the window, per-execution window
        toggle (measured ~0.1µs on the settrace backend) — but the
        context-manager protocol and the multi-frame delivery loop are
        skipped, and coverage lands in the caller's map instead of the
        collector's own, so a batch of results can outlive each other.

        Only valid with a collector and without a channel; the engine's
        ``_can_batch`` gates both.
        """
        self.executions += 1
        heap = SimHeap()
        self.server.reset()
        collector = self.collector
        collector.map = coverage_map
        collector.begin()
        try:
            crash, hang, response = self._dispatch(heap, packet, model_name)
        finally:
            collector.end()
        return ExecResult(coverage=coverage_map, crash=crash, hang=hang,
                          response=response,
                          blocks_executed=collector.blocks_executed,
                          delivered=None)

    def run_trace(self, steps: Sequence[Tuple[bytes, Optional[str]]],
                  binder=None) -> TraceResult:
        """Execute a whole multi-packet trace against one live session.

        The server is reset **once**, at the trace boundary; every step
        then runs against the same server instance *and the same
        simulated heap*, so cross-packet state (sequence numbers,
        select-before-operate latches, lingering allocations) carries
        over exactly as it would on a real connection.  Coverage is
        accumulated across steps into one trace-level map, and a crash
        is attributed to the step that raised it (the trace stops
        there — the session is gone).

        *binder* (optional, duck-typed — see
        :class:`repro.state.binder.TraceBinder`) is consulted around
        each step: ``prepare(index, packet)`` returns the wire bytes to
        actually send (response-derived bindings applied), and
        ``observe(index, response)`` captures session variables from
        the reply.
        """
        self.server.reset()
        if self.channel is not None:
            self.channel.reset()
        heap = SimHeap()
        accumulated = CoverageMap() if self.collector is not None else None
        result = TraceResult(coverage=accumulated, crash=None, hang=False,
                             response=None)
        for index, (packet, model_name) in enumerate(steps):
            self.executions += 1
            wire = packet if binder is None else binder.prepare(index, packet)
            result.sent.append(wire)
            if self.channel is None:
                frames: Sequence[bytes] = (wire,)
            else:
                frames = self.channel.transmit(index, wire)
                if index == len(steps) - 1:
                    # last step: a frame still held by a reorder fault
                    # lands before the session closes
                    frames.extend(self.channel.flush())
                result.delivered.append(list(frames))
            if self.collector is not None:
                with self.collector:
                    crash, hang, response = self._dispatch_frames(
                        heap, frames, model_name)
                result.blocks_executed += self.collector.blocks_executed
                accumulated.absorb(self.collector.map)
            else:
                crash, hang, response = self._dispatch_frames(
                    heap, frames, model_name)
            result.steps_executed = index + 1
            result.responses.append(response)
            result.response = response
            if crash is not None:
                result.crash = crash
                result.crash_step = index
                break
            if hang:
                result.hang = True
                result.crash_step = index
                break
            if binder is not None:
                binder.observe(index, response)
        return result

    def _dispatch_frames(self, heap: SimHeap, frames: Sequence[bytes],
                         model_name: Optional[str]):
        """Deliver each frame in order; a crash or hang stops delivery.

        An empty *frames* (the channel dropped the packet) is a no-op
        execution: no dispatch, no response.
        """
        crash = None
        hang = False
        response = None
        for frame in frames:
            crash, hang, response = self._dispatch(heap, frame, model_name)
            if crash is not None or hang:
                break
        return crash, hang, response

    def _dispatch(self, heap: SimHeap, packet: bytes,
                  model_name: Optional[str]):
        try:
            response = self.server.handle_packet(heap, packet)
            return None, False, response
        except MemoryFault as fault:
            report = report_from_fault(
                fault, packet, model_name, self.executions,
                call_sites=capture_crash_context(self.collector, fault))
            return report, False, None
        except HangBudgetExceeded:
            return None, True, None
