"""Integration tests: whole-system behaviour across module boundaries."""

import pytest

from repro.core import (
    CampaignConfig, FileCracker, PeachStar, PuzzleCorpus, run_campaign,
)
from repro.protocols import all_targets, get_target


def _config(**kwargs):
    defaults = dict(budget_hours=24.0, max_executions=600, record_every=20)
    defaults.update(kwargs)
    return CampaignConfig(**defaults)


class TestCampaignsAcrossTargets:
    @pytest.mark.parametrize("target_name", [
        spec.name for spec in all_targets()])
    def test_both_engines_cover_paths(self, target_name):
        spec = get_target(target_name)
        for engine in ("peach", "peach-star"):
            result = run_campaign(engine, spec, seed=3,
                                  config=_config(max_executions=250))
            assert result.final_paths > 0, (target_name, engine)
            assert result.final_edges > 0

    def test_no_crashes_on_bug_free_targets(self):
        for name in ("iec104", "opendnp3", "libiec61850"):
            result = run_campaign("peach-star", get_target(name), seed=5,
                                  config=_config(max_executions=400))
            assert result.unique_crashes == [], name

    def test_crashes_only_at_seeded_sites(self):
        for name in ("libmodbus", "lib60870", "libiccp"):
            spec = get_target(name)
            result = run_campaign("peach-star", spec, seed=5,
                                  config=_config(max_executions=500))
            for report in result.unique_crashes:
                assert report.dedup_key in spec.seeded_bug_sites, name


class TestPeachStarFindsSeededBugs:
    def test_libiccp_bugs_found_quickly(self):
        """libiccp carries 4 bugs; a modest budget should surface most."""
        spec = get_target("libiccp")
        result = run_campaign("peach-star", spec, seed=11,
                              config=_config(max_executions=1200))
        assert len(result.unique_crashes) >= 2

    def test_crash_time_recorded_in_budget(self):
        spec = get_target("libiccp")
        result = run_campaign("peach-star", spec, seed=11,
                              config=_config(max_executions=1200))
        for _key, hours in result.crash_times.items():
            assert 0.0 <= hours <= 24.0


class TestCrackGenerateLoop:
    def test_corpus_feeds_back_into_generation(self):
        """The full Fig. 3 loop: valuable seed -> crack -> splice -> run."""
        import random
        from repro.runtime import Target, TracingCollector

        spec = get_target("libmodbus")
        target = Target(spec.make_server,
                        TracingCollector(("repro/protocols",)))
        engine = PeachStar(spec.make_pit(), target, random.Random(2))
        semantic_seen = 0
        for _ in range(300):
            outcome = engine.iterate()
            if outcome.semantic:
                semantic_seen += 1
        assert engine.stats.valuable_seeds > 0
        assert not engine.corpus.is_empty
        assert semantic_seen > 0
        # spliced packets must parse under their own model (fixup worked)
        pit = engine.pit
        for tree, wire, model_name in list(engine._pending)[:10]:
            assert pit.model(model_name).matches(wire)

    def test_cracker_harvests_cross_model_puzzles(self):
        """A valid read request cracks under both its own model and the
        coarse raw model (paper Alg. 2 tries every model)."""
        from repro.protocols.modbus import build_read_request

        pit = get_target("libmodbus").make_pit()
        corpus = PuzzleCorpus()
        cracker = FileCracker(pit, corpus)
        cracker.crack(build_read_request(0x03, 0x10, 2))
        assert cracker.models_matched >= 2
        assert corpus.rule_count() > 5


class TestDeterminism:
    def test_campaigns_reproducible(self):
        spec = get_target("iec104")
        first = run_campaign("peach-star", spec, seed=7,
                             config=_config(max_executions=200))
        second = run_campaign("peach-star", spec, seed=7,
                              config=_config(max_executions=200))
        assert first.final_paths == second.final_paths
        assert first.series == second.series
        assert [c.dedup_key for c in first.unique_crashes] == \
            [c.dedup_key for c in second.unique_crashes]

    def test_different_seeds_differ(self):
        spec = get_target("libmodbus")
        a = run_campaign("peach", spec, seed=1,
                         config=_config(max_executions=150))
        b = run_campaign("peach", spec, seed=2,
                         config=_config(max_executions=150))
        assert a.series != b.series
