"""Tests for the opendnp3-analog target: CRC framing, layers, object walk."""

import pytest

from repro.model import ParseError, choose_model, generate_packet
from repro.protocols.dnp3 import (
    Dnp3CrcTransformer, Dnp3Server, FrameError, add_crcs, build_request,
    codec, make_pit, object_header, parse_response, strip_crcs,
)
from repro.sanitizer import MemoryFault, SimHeap


@pytest.fixture
def server():
    return Dnp3Server()


def _exec(server, frame):
    return server.handle_packet(SimHeap(), frame)


class TestCrcFraming:
    def test_add_strip_roundtrip(self):
        logical = codec.build_link_header(10, 0xC4, 1, 2) + b"\xC0\xC1\x01" \
            + bytes(range(16)) * 2
        assert strip_crcs(add_crcs(logical)) == logical

    def test_crc_every_16_octets(self):
        user = bytes(20)
        logical = codec.build_link_header(5 + len(user), 0xC4, 1, 2) + user
        wire = add_crcs(logical)
        # header(8) + crc(2) + block(16) + crc(2) + block(4) + crc(2)
        assert len(wire) == 8 + 2 + 16 + 2 + 4 + 2

    def test_strip_detects_header_corruption(self):
        wire = bytearray(build_request(codec.FC_READ,
                                       object_header(60, 1, 0x06)))
        wire[3] ^= 0xFF
        with pytest.raises(FrameError):
            strip_crcs(bytes(wire))

    def test_strip_detects_block_corruption(self):
        wire = bytearray(build_request(codec.FC_READ,
                                       object_header(60, 1, 0x06)))
        wire[-3] ^= 0xFF
        with pytest.raises(FrameError):
            strip_crcs(bytes(wire))

    def test_transformer_rejects_bad_crc_as_parse_error(self):
        transformer = Dnp3CrcTransformer()
        wire = bytearray(build_request(codec.FC_READ,
                                       object_header(60, 1, 0x06)))
        wire[-1] ^= 0x01
        with pytest.raises(ParseError):
            transformer.decode(bytes(wire))


class TestLinkLayer:
    def test_class_poll_answered(self, server):
        response = _exec(server, build_request(
            codec.FC_READ, object_header(60, 1, codec.QC_ALL)))
        parsed = parse_response(response)
        assert parsed["app_fc"] == codec.FC_RESPONSE
        assert parsed["iin"] & 0x8000  # device restart set initially

    def test_wrong_destination_dropped(self, server):
        frame = build_request(codec.FC_READ,
                              object_header(60, 1, 0x06), dest=99)
        assert _exec(server, frame) is None

    def test_broadcast_accepted(self, server):
        frame = build_request(codec.FC_READ,
                              object_header(60, 1, 0x06), dest=0xFFFF)
        assert _exec(server, frame) is not None

    def test_corrupted_header_crc_dropped(self, server):
        frame = bytearray(build_request(codec.FC_READ,
                                        object_header(60, 1, 0x06)))
        frame[8] ^= 0xFF
        assert _exec(server, bytes(frame)) is None

    def test_corrupted_block_crc_dropped(self, server):
        frame = bytearray(build_request(codec.FC_READ,
                                        object_header(60, 1, 0x06)))
        frame[-1] ^= 0xFF
        assert _exec(server, bytes(frame)) is None

    def test_secondary_station_frame_ignored(self, server):
        logical = codec.build_link_header(5, 0x00, 1, 2)
        assert _exec(server, add_crcs(logical)) is None

    def test_link_status_request(self, server):
        logical = codec.build_link_header(5, 0x49, 1, 2)  # PRM + status
        assert _exec(server, add_crcs(logical)) is not None


class TestApplicationLayer:
    def test_read_binaries_range(self, server):
        objects = object_header(1, 2, codec.QC_START_STOP_8, bytes((0, 7)))
        response = parse_response(_exec(server, build_request(
            codec.FC_READ, objects)))
        assert response["objects"][0] == 1  # group 1 static response

    def test_read_counters_count_qualifier(self, server):
        objects = object_header(20, 1, codec.QC_COUNT_8, bytes((4,)))
        assert _exec(server, build_request(codec.FC_READ,
                                           objects)) is not None

    def test_write_time_accepted(self, server):
        objects = object_header(50, 1, codec.QC_COUNT_8, bytes((1,))) \
            + (1_700_000_000_000).to_bytes(6, "little")
        response = parse_response(_exec(server, build_request(
            codec.FC_WRITE, objects)))
        assert response["iin"] & 0x00FF == 0  # no error bits

    def test_clear_restart_iin(self, server):
        objects = object_header(80, 1, codec.QC_START_STOP_8, bytes((7, 7)))
        _exec(server, build_request(codec.FC_WRITE, objects))
        follow = parse_response(_exec(server, build_request(
            codec.FC_READ, object_header(60, 1, codec.QC_ALL))))
        assert not follow["iin"] & 0x8000  # restart bit cleared

    def test_select_then_operate_crob(self, server):
        crob = bytes((1,)) + bytes((0,)) + bytes((1, 1)) \
            + (100).to_bytes(4, "little") + (100).to_bytes(4, "little") \
            + bytes((0,))
        objects = object_header(12, 1, codec.QC_INDEX_8, crob[:1]) + crob[1:]
        select = parse_response(_exec(server, build_request(
            codec.FC_SELECT, objects)))
        operate = parse_response(_exec(server, build_request(
            codec.FC_OPERATE, objects)))
        assert select["objects"][-1] == 0  # CROB status SUCCESS
        assert operate["objects"][-1] == 0

    def test_operate_without_select_fails(self, server):
        crob = bytes((1,)) + bytes((2,)) + bytes((1, 1)) \
            + (100).to_bytes(4, "little") + (100).to_bytes(4, "little") \
            + bytes((0,))
        objects = object_header(12, 1, codec.QC_INDEX_8, crob[:1]) + crob[1:]
        operate = parse_response(_exec(server, build_request(
            codec.FC_OPERATE, objects)))
        assert operate["objects"][-1] == 2  # NO_SELECT

    def test_cold_restart_returns_delay(self, server):
        response = parse_response(_exec(server, build_request(
            codec.FC_COLD_RESTART)))
        assert response["objects"][0] == 52

    def test_unsupported_function_sets_iin(self, server):
        response = parse_response(_exec(server, build_request(99)))
        assert response["iin"] & codec.IIN2_NO_FUNC_CODE_SUPPORT

    def test_unknown_object_sets_iin(self, server):
        objects = object_header(77, 1, codec.QC_ALL)
        response = parse_response(_exec(server, build_request(
            codec.FC_READ, objects)))
        assert response["iin"] & codec.IIN2_OBJECT_UNKNOWN

    def test_malformed_range_sets_parameter_error(self, server):
        objects = object_header(1, 2, codec.QC_START_STOP_8, bytes((7,)))
        response = parse_response(_exec(server, build_request(
            codec.FC_READ, objects)))
        assert response["iin"] & codec.IIN2_PARAMETER_ERROR

    def test_confirm_has_no_response(self, server):
        assert _exec(server, build_request(codec.FC_CONFIRM)) is None

    def test_direct_operate_no_ack_silent(self, server):
        crob = bytes((0,)) + bytes((1, 1)) \
            + (100).to_bytes(4, "little") + (100).to_bytes(4, "little") \
            + bytes((0,))
        objects = object_header(12, 1, codec.QC_INDEX_8, bytes((1,))) + crob
        assert _exec(server, build_request(codec.FC_DIRECT_OPERATE_NR,
                                           objects)) is None


class TestRobustness:
    def test_no_faults_under_fuzzing(self, server, rng):
        """Table I lists no opendnp3 bugs — fuzzing must not crash it."""
        pit = make_pit()
        for _ in range(1500):
            model = choose_model(pit, rng)
            _tree, wire = generate_packet(model, rng)
            server.reset()
            try:
                _exec(server, wire)
            except MemoryFault as fault:  # pragma: no cover
                pytest.fail(f"unexpected fault: {fault}")

    def test_pit_defaults_valid_and_answered(self, server):
        for model in make_pit():
            raw = model.build_bytes()
            assert model.matches(raw)
            server.reset()
            _exec(server, raw)

    def test_pit_packets_carry_valid_crcs(self):
        for model in make_pit():
            strip_crcs(model.build_bytes())  # must not raise
