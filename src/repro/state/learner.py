"""AFLNet-style state-machine learning from response features.

Session mode (PR 4) walks hand-written :class:`~repro.state.model.
StateModel`\\ s — which makes stateful fuzzing a property of the three
targets someone modelled.  This module makes it a property of the
*framework*: :class:`LearnedStateModel` infers a protocol state machine
online, from the responses the live server actually sends, and exposes
the exact duck-type the :class:`~repro.state.engine.SessionFuzzer`
already consumes (``initial`` / ``pick_transition`` /
``validate_against`` / ``observe``), so walk, extend and splice operate
on the learned graph as it grows.

The AFLNet analogy, piece by piece:

* **states** are *response-feature classes*.  Each observed reply is
  classified by :class:`ResponseClassifier` into a deterministic label
  built from its type/reason-code leaves — first by strict-parsing it
  under the pit's data models, then (replies rarely *are* legal
  requests) by reading it through the request's own model with the
  lenient parse path (``parse(strict=False, lenient_tokens=True,
  allow_trailing=True)``), and finally by a bounded raw-shape label.
  A dropped packet is the ``silent`` state — which is precisely how the
  STARTDT/STOPDT gates of the IEC 104 family become visible.
* **transitions** record which *request kind* (data-model name) moved
  the session from one feature class to another, with observation
  counts as walk weights.
* **exploration**: a walk standing in a state with no (or few) learned
  edges sends a randomly chosen data model — the learner's analog of
  AFLNet's region-level mutation — and the observed outcome becomes a
  new edge.  The automaton therefore grows from nothing: the first
  traces are plain random walks, and every executed trace refines the
  graph.
* **bindings**: capture/bind/expect declarations are reused from the
  target's hand-written state model when one exists (``binding_hints``)
  so learned traces keep echoing live sequence numbers through the
  :class:`~repro.state.binder.TraceBinder`; targets with no hand model
  simply fuzz without captures, exactly like AFLNet.

Everything is deterministic given the engine RNG: classification is a
pure function of the response bytes, the automaton preserves first-
observation order, and :meth:`LearnedStateModel.snapshot` /
:meth:`~LearnedStateModel.restore` round-trip the whole learner state
through the workspace's ``state.json`` checkpoint — kill/resume and
fleet sync of a learning campaign stay bit-identical.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Tuple

from repro.model.datamodel import Pit
from repro.model.fields import ModelError, ParseError
from repro.model.generation import choose_model
from repro.state.model import StateModel, Transition

#: leaf semantics treated as response type/reason codes.  The set spans
#: the six bundled pits (IEC 104 family ASDU type/COT and U-frame
#: function, Modbus function code, DNP3 application function + the IIN
#: octets that land in the object-header leaves, MMS/ICCP PDU and
#: service tags) but is purely advisory: an unlisted protocol degrades
#: to silent/raw-shape classes instead of failing.
FEATURE_SEMANTICS = (
    "type_id", "cot", "u_function", "s_marker", "function",
    "diag_sub_function", "app_function", "group", "variation",
    "pdu_tag", "service_tag",
)

#: label of the no-response feature class
SILENT_STATE = "silent"
#: label absorbing feature classes past the state cap
OVERFLOW_STATE = "overflow"
#: features kept per label (leaf order); more would over-split states
MAX_FEATURES_PER_LABEL = 4


def _feature_pairs(tree) -> List[str]:
    """``sem=value`` pairs of the tree's feature leaves, in leaf order.

    Only integer-valued leaves whose bytes were actually present on the
    wire count — lenient parsing substitutes defaults for truncated
    leaves, and a default is not an observation.
    """
    pairs: List[str] = []
    seen = set()
    for node in tree.root.iter_leaves():
        semantic = node.field.semantic
        if semantic in seen or semantic not in FEATURE_SEMANTICS:
            continue
        if not node.raw or not isinstance(node.value, int):
            continue
        seen.add(semantic)
        pairs.append(f"{semantic}={node.value}")
        if len(pairs) >= MAX_FEATURES_PER_LABEL:
            break
    return pairs


class ResponseClassifier:
    """Deterministic response-bytes -> feature-class labelling."""

    #: classification cache bound (responses repeat heavily; the cache
    #: simply stops growing at the cap — results stay identical)
    CACHE_LIMIT = 8192

    def __init__(self, pit: Pit):
        self.pit = pit
        self._cache: Dict[Tuple[str, bytes], str] = {}

    def classify(self, response: Optional[bytes],
                 request_model_name: str) -> str:
        """The learned-state label a response lands the session in."""
        if response is None:
            return SILENT_STATE
        key = (request_model_name, response)
        label = self._cache.get(key)
        if label is None:
            label = self._classify(response, request_model_name)
            if len(self._cache) < self.CACHE_LIMIT:
                self._cache[key] = label
        return label

    def _classify(self, response: bytes, request_model_name: str) -> str:
        # Two readings compete and the more informative one (more
        # feature pairs; legal-packet reading preferred on ties) wins:
        #
        # 1. a reply that is a *legal packet* of the pit carries its
        #    feature leaves directly (peer-direction models, echoes);
        strict_pairs: List[str] = []
        for model in self.pit:
            try:
                tree = model.parse(response)
            except (ParseError, ValueError, OverflowError):
                continue
            pairs = _feature_pairs(tree)
            if len(pairs) > len(strict_pairs):
                strict_pairs = pairs
        # 2. reading the reply through the request's own model with the
        #    lenient parse path: shared framing means the type/reason
        #    leaves still line up (a Modbus exception decodes fc|0x80
        #    into the request's function leaf, a DNP3 response its IIN
        #    octets into the object-header leaves — which a low-detail
        #    catch-all model's legal parse would hide).
        lenient_pairs: List[str] = []
        try:
            model = self.pit.model(request_model_name)
        except ModelError:
            model = None
        if model is not None:
            try:
                tree = model.parse(response, strict=False,
                                   lenient_tokens=True, allow_trailing=True)
            except (ParseError, ValueError, OverflowError):
                tree = None
            if tree is not None:
                lenient_pairs = _feature_pairs(tree)
        if strict_pairs and len(strict_pairs) >= len(lenient_pairs):
            return ",".join(strict_pairs)
        if lenient_pairs:
            return "~" + ",".join(lenient_pairs)
        # 3. bounded raw-shape fallback: length bucket + leading byte
        return f"raw[{min(len(response), 512) // 16}]:{response[:1].hex()}"


def binding_hints(state_model: Optional[StateModel]
                  ) -> Dict[str, Tuple[dict, Optional[str], dict]]:
    """Per-request-kind (bind, expect, capture) from a hand-written model.

    The first transition declaring each ``send`` model wins (hand models
    keep these consistent per kind).  Learned transitions reuse the
    hints so the :class:`~repro.state.binder.TraceBinder` keeps echoing
    live sequence numbers / transaction ids; with no hand model the
    learner fuzzes capture-free, AFLNet-style.
    """
    hints: Dict[str, Tuple[dict, Optional[str], dict]] = {}
    if state_model is None:
        return hints
    for state in state_model.states():
        for transition in state.transitions:
            if transition.send not in hints:
                hints[transition.send] = (dict(transition.bind),
                                          transition.expect,
                                          dict(transition.capture))
    return hints


class _LearnedState:
    """One automaton node: outgoing edges in first-observation order."""

    __slots__ = ("name", "edges")

    def __init__(self, name: str):
        self.name = name
        # send model -> {destination label -> observation count},
        # both dicts in first-observation order (order is part of the
        # deterministic walk behaviour and of the snapshot)
        self.edges: Dict[str, Dict[str, int]] = {}


class LearnedStateModel:
    """A StateModel-compatible automaton grown from observed responses.

    Parameters
    ----------
    pit:
        The target's format specification (exploration draws from it).
    hints:
        Output of :func:`binding_hints` (may be empty).
    explore_prob:
        Probability of an exploration step even when learned edges
        exist; a state with no learned edges always explores.
    max_states:
        Cap on learned feature classes; labels past it collapse into
        :data:`OVERFLOW_STATE` so a noisy protocol cannot blow the
        automaton (and the checkpoint) up.
    """

    #: the pre-first-response state of every session
    INITIAL = "genesis"

    def __init__(self, pit: Pit, hints: Optional[Mapping[str, tuple]] = None,
                 explore_prob: float = 0.3, max_states: int = 64):
        self.pit = pit
        self.name = f"{pit.name}.learned"
        self.initial = self.INITIAL
        self.hints = dict(hints) if hints else {}
        self.explore_prob = explore_prob
        self.max_states = max_states
        self.classifier = ResponseClassifier(pit)
        self._states: Dict[str, _LearnedState] = {}
        self._intern(self.initial)
        #: next pit model to emit as a bootstrap probe (see
        #: :meth:`probe_transitions`); persisted in the snapshot
        self._probe_cursor = 0

    # -- StateModel duck-type -------------------------------------------

    def validate_against(self, pit) -> None:
        """Learned transitions only ever reference *pit*'s own models."""
        available = {model.name for model in pit}
        for send in self.hints:
            if send not in available:
                raise ModelError(
                    f"learned model {self.name!r}: binding hint for "
                    f"unknown data model {send!r}")

    def states(self) -> Tuple[_LearnedState, ...]:
        return tuple(self._states.values())

    @property
    def learned_state_count(self) -> int:
        """Feature classes observed so far (the initial node excluded)."""
        return len(self._states) - 1

    def state_labels(self) -> Tuple[str, ...]:
        """Observed feature-class labels, first-observation order."""
        return tuple(name for name in self._states if name != self.initial)

    def pick_transition(self, state_name: str,
                        rng: random.Random) -> Optional[Transition]:
        """One walk step: follow a learned edge or explore.

        Unknown states (stale labels from spliced/imported traces) and
        edge-less states always explore; otherwise an ``explore_prob``
        roll decides.  Every random decision draws from the engine RNG,
        so walks stay reproducible and resumable.
        """
        state = self._states.get(state_name)
        if state is None or not state.edges or \
                rng.random() < self.explore_prob:
            return self._explore(state_name, rng)
        sends = list(state.edges)
        weights = [sum(state.edges[send].values()) for send in sends]
        total = float(sum(weights))
        roll = rng.random() * total
        acc = 0.0
        chosen = sends[-1]
        for send, weight in zip(sends, weights):
            acc += weight
            if roll < acc:
                chosen = send
                break
        destinations = state.edges[chosen]
        # predicted destination: the most-observed, first on ties
        best = max(destinations.values())
        to = next(label for label, count in destinations.items()
                  if count == best)
        return self._transition(chosen, to)

    def probe_transitions(self, chunk_size: int
                          ) -> Optional[List[Transition]]:
        """Bootstrap seed sessions: default-packet walks over the pit.

        AFLNet seeds its state learning from recorded real sessions;
        the spec-based analog is that *default packets are valid by
        construction* (a repo-wide modelling invariant), so the first
        traces of a learning campaign simply play the pit's data models
        in declaration order, ``chunk_size`` per trace.  That hands the
        learner one clean observation of every request kind — including
        multi-step behaviours that random generation rarely lines up,
        like clear-restart-then-select on DNP3 — before exploration
        takes over.  Returns ``None`` once the pit has been played.
        """
        models = self.pit.models()
        if self._probe_cursor >= len(models):
            return None
        chunk = models[self._probe_cursor:self._probe_cursor + chunk_size]
        self._probe_cursor += len(chunk)
        return [self._transition(model.name, self.initial)
                for model in chunk]

    def _explore(self, state_name: str, rng: random.Random) -> Transition:
        model = choose_model(self.pit, rng)
        # prediction unknown: annotate with the current state; the
        # post-execution observe() replaces it with the observed class
        return self._transition(model.name, state_name)

    def _transition(self, send: str, to: str) -> Transition:
        bind, expect, capture = self.hints.get(send, ({}, None, {}))
        return Transition(send, to, bind=dict(bind), expect=expect,
                          capture=dict(capture))

    # -- learning -------------------------------------------------------

    def observe(self, steps, result) -> None:
        """Grow the automaton from one executed trace.

        Each executed step contributes the edge ``state --request
        kind--> feature class`` and is re-annotated with the *observed*
        destination, so stored traces (and therefore extend-from-final-
        state walks, the corpus, fleet sync and resume) always carry
        real states, not predictions.
        """
        state = self.initial
        for index in range(result.steps_executed):
            response = result.responses[index] \
                if index < len(result.responses) else None
            step = steps[index]
            label = self._intern(
                self.classifier.classify(response, step.model_name))
            node = self._states[state]
            destinations = node.edges.setdefault(step.model_name, {})
            destinations[label] = destinations.get(label, 0) + 1
            step.state = label
            state = label

    def _intern(self, label: str) -> str:
        if label in self._states:
            return label
        if len(self._states) > self.max_states:
            label = OVERFLOW_STATE
            if label in self._states:
                return label
        self._states[label] = _LearnedState(label)
        return label

    # -- checkpointing --------------------------------------------------

    def snapshot(self) -> dict:
        """Pure-JSON image of the automaton, order-preserving."""
        return {
            "initial": self.initial,
            "probe_cursor": self._probe_cursor,
            "states": [
                [state.name,
                 [[send, [[to, count] for to, count in dests.items()]]
                  for send, dests in state.edges.items()]]
                for state in self._states.values()
            ],
        }

    def restore(self, blob: dict) -> None:
        """Inverse of :meth:`snapshot` (insertion order included)."""
        self.initial = blob["initial"]
        self._probe_cursor = blob.get("probe_cursor", 0)
        self._states = {}
        for name, edges in blob["states"]:
            state = _LearnedState(name)
            for send, destinations in edges:
                state.edges[send] = {to: count
                                     for to, count in destinations}
            self._states[name] = state
        if self.initial not in self._states:
            self._intern(self.initial)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<LearnedStateModel {self.name!r} "
                f"({self.learned_state_count} learned states)>")
