"""Property-based tests (hypothesis) on the data-model substrate.

These pin the core invariants the fuzzer relies on:

* build → parse is an identity on leaf values (for relation-consistent
  models), with fixups verifying;
* puzzles reassemble to the packet;
* CRC implementations match their reference definitions;
* the mutator pipeline never produces a packet the model cannot repair.
"""

import random
import zlib

from hypothesis import given, settings, strategies as st

from repro.model import (
    Blob, Block, Crc32Fixup, DataModel, MutatorProvider, Number, Str,
    attach_fixup, crc16_modbus, crc_dnp3, lrc8, size_of, sum8, xor8,
)


def _packet_model():
    return DataModel("pm", Block("root", [
        Number("id", 1, default=0x10, token=True),
        size_of(Number("size", 2), "body"),
        Block("body", [
            Number("code", 1, default=1),
            Number("value", 4, default=0),
            Blob("payload", default=b"", max_length=300),
        ]),
        attach_fixup(Number("crc", 4), Crc32Fixup(["id", "size", "body"])),
    ]))


values_strategy = st.tuples(
    st.integers(min_value=0, max_value=255),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.binary(max_size=64),
)


class _PinProvider:
    """ValueProvider pinning the three body leaves."""

    def __init__(self, code, value, payload):
        self.mapping = {"root.body.code": code, "root.body.value": value,
                        "root.body.payload": payload}

    def leaf_value(self, field, path):
        return self.mapping.get(path)

    def choose_option(self, choice, path):
        return 0

    def repeat_count(self, repeat, path):
        return 1


@given(values_strategy)
@settings(max_examples=150, deadline=None)
def test_build_parse_roundtrip_preserves_leaf_values(triple):
    code, value, payload = triple
    model = _packet_model()
    tree = model.build(_PinProvider(code, value, payload))
    parsed = model.parse(tree.raw, verify_fixups=True)
    assert parsed.find("code").value == code
    assert parsed.find("value").value == value
    assert parsed.find("payload").value == payload
    assert parsed.find("size").value == len(tree.find("body").raw)


@given(values_strategy)
@settings(max_examples=100, deadline=None)
def test_puzzles_reassemble_to_packet(triple):
    """Definition 2: leaf puzzles joint in order == the packet bytes."""
    code, value, payload = triple
    model = _packet_model()
    tree = model.build(_PinProvider(code, value, payload))
    leaf_join = b"".join(leaf.raw for leaf in tree.iter_leaves())
    assert leaf_join == tree.raw


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=100, deadline=None)
def test_number_encode_decode_identity(value):
    field = Number("n", 4)
    assert field.decode(field.encode(value)) == value


@given(st.integers(min_value=-2**31, max_value=2**31 - 1))
@settings(max_examples=100, deadline=None)
def test_signed_number_identity(value):
    field = Number("n", 4, signed=True)
    assert field.decode(field.encode(value)) == value


@given(st.binary(max_size=128))
@settings(max_examples=100, deadline=None)
def test_crc32_matches_zlib(data):
    fixup = Crc32Fixup(["x"])
    assert fixup.compute(data) == (zlib.crc32(data) & 0xFFFFFFFF)


@given(st.binary(max_size=128))
@settings(max_examples=100, deadline=None)
def test_checksums_within_width(data):
    assert 0 <= crc16_modbus(data) <= 0xFFFF
    assert 0 <= crc_dnp3(data) <= 0xFFFF
    assert 0 <= sum8(data) <= 0xFF
    assert 0 <= xor8(data) <= 0xFF
    assert 0 <= lrc8(data) <= 0xFF


@given(st.binary(min_size=1, max_size=64), st.integers(0, 7),
       st.integers(0, 63))
@settings(max_examples=100, deadline=None)
def test_crc16_detects_single_bit_flips(data, bit, pos_seed):
    pos = pos_seed % len(data)
    flipped = bytearray(data)
    flipped[pos] ^= 1 << bit
    assert crc16_modbus(data) != crc16_modbus(bytes(flipped))


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_mutated_packets_always_reparse(seed):
    """GENERATE + JOINT + fixups always yields a model-legal packet."""
    model = _packet_model()
    provider = MutatorProvider(random.Random(seed))
    tree = model.build(provider)
    parsed = model.parse(tree.raw, verify_fixups=True)
    assert parsed.raw == tree.raw


@given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126),
               max_size=32))
@settings(max_examples=80, deadline=None)
def test_str_field_identity_for_printable(text):
    field = Str("s")
    assert field.decode(field.encode(text)) == text
