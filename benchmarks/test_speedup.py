"""§V-B speed headline: Peach* reaches Peach's coverage at 1.2X-25X speed.

For each project, find the simulated time at which Peach* first matched
the path coverage Peach ended the 24-hour budget with, and report the
ratio — the paper's "achieves the same code coverage at the speed of
1.2X-25X (an average of 5.7X)".
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_HOURS, BENCH_JOBS, BENCH_REPS, \
    bench_config, print_block
from repro.analysis.speedup import run_headline
from repro.protocols import all_targets

_CACHE = {}


def _headline():
    if "report" not in _CACHE:
        _CACHE["report"] = run_headline(
            list(all_targets()), repetitions=BENCH_REPS,
            budget_hours=BENCH_HOURS, base_seed=500, config=bench_config(),
            jobs=BENCH_JOBS)
    return _CACHE["report"]


def test_speedup_to_equal_coverage(benchmark):
    report = benchmark.pedantic(_headline, rounds=1, iterations=1)
    print_block(
        "Speed to equal coverage (paper: 1.2X-25X, avg 5.7X)",
        report.render())
    speeds = [s.speedup for s in report.summaries if s.speedup is not None]
    assert speeds, "Peach* never matched baseline coverage on any target"
    # shape: on at least half the projects Peach* matches the baseline's
    # final coverage before the budget ends (speedup > 1X)
    ahead = sum(1 for s in speeds if s > 1.0)
    assert ahead >= len(speeds) / 2
